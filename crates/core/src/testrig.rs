//! Shared unit-test fixture: a host file system, a daemon, and GPUs.

use std::sync::Arc;

use gpusim::{BlockCtx, Gpu, GpuSpec, Grid};
use hostfs::{HostFs, HostFsConfig};

use crate::daemon::GpufsHost;

pub(crate) struct Rig {
    pub fs: Arc<HostFs>,
    pub host: GpufsHost,
    pub gpus: Vec<Arc<Gpu>>,
}

pub(crate) fn rig(n_gpus: usize) -> Rig {
    rig_pool(n_gpus, 1, 1)
}

/// A rig whose daemon runs `workers` threads over `channels` RPC channels.
pub(crate) fn rig_pool(n_gpus: usize, channels: usize, workers: usize) -> Rig {
    let fs = Arc::new(HostFs::new(HostFsConfig::default()));
    let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
        .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
        .collect();
    let host = GpufsHost::with_concurrency(Arc::clone(&fs), gpus.clone(), channels, workers);
    Rig { fs, host, gpus }
}

/// Run `kernel` as a single threadblock on GPU 0.
pub(crate) fn run_block(r: &Rig, kernel: impl Fn(&mut BlockCtx<'_>) + Sync) {
    r.gpus[0].launch(Grid::new(1, 32), 0, kernel);
}
