//! Error type for GPUfs operations.

use std::fmt;

use gpusim::MemError;
use hostfs::FsError;

/// Errors returned by the GPUfs GPU-side API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpufsError {
    /// The host file system rejected the operation.
    Host(FsError),
    /// GPU global memory could not hold the buffer cache.
    DeviceMemory(MemError),
    /// The GPU buffer cache could not reclaim enough frames: every
    /// candidate page is pinned by running threadblocks.
    CacheExhausted {
        /// Frames requested.
        requested: usize,
    },
    /// The file descriptor was already closed by this threadblock (its
    /// per-block reference was consumed).
    StaleDescriptor,
    /// Write attempted on a file opened read-only.
    ReadOnly(String),
    /// Read attempted on a file opened with `O_GWRONCE`, whose pages are
    /// never fetched from the host (paper §3.2).
    WriteOnce(String),
    /// `gmmap` requested a zero-length mapping.
    EmptyMapping,
    /// The RPC channel to the host daemon is down (daemon stopped).
    DaemonStopped,
    /// Operation not permitted for the file's open mode (e.g. `gmsync` on
    /// an `O_NOSYNC` temporary file).
    InvalidMode(&'static str),
    /// The host-side runtime could not allocate an OS resource it needs
    /// (e.g. the async write-back flusher thread at mount time).
    HostResource(&'static str),
}

impl fmt::Display for GpufsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpufsError::Host(e) => write!(f, "host file system error: {e}"),
            GpufsError::DeviceMemory(e) => write!(f, "gpu memory error: {e}"),
            GpufsError::CacheExhausted { requested } => {
                write!(
                    f,
                    "gpu buffer cache exhausted: could not reclaim {requested} frame(s)"
                )
            }
            GpufsError::StaleDescriptor => write!(f, "file descriptor already closed"),
            GpufsError::ReadOnly(p) => write!(f, "file is open read-only: {p}"),
            GpufsError::WriteOnce(p) => write!(f, "file is open write-once (O_GWRONCE): {p}"),
            GpufsError::EmptyMapping => write!(f, "gmmap of zero bytes"),
            GpufsError::DaemonStopped => write!(f, "gpufs host daemon is not running"),
            GpufsError::InvalidMode(what) => write!(f, "operation invalid for open mode: {what}"),
            GpufsError::HostResource(what) => {
                write!(f, "host resource unavailable: {what}")
            }
        }
    }
}

impl std::error::Error for GpufsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpufsError::Host(e) => Some(e),
            GpufsError::DeviceMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for GpufsError {
    fn from(e: FsError) -> Self {
        GpufsError::Host(e)
    }
}

impl From<MemError> for GpufsError {
    fn from(e: MemError) -> Self {
        GpufsError::DeviceMemory(e)
    }
}

/// Result alias for GPUfs operations.
pub type GpufsResult<T> = Result<T, GpufsError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_errors_wrap_with_source() {
        use std::error::Error;
        let e = GpufsError::from(FsError::NotFound("/x".into()));
        assert!(e.to_string().contains("/x"));
        assert!(e.source().is_some());
    }

    #[test]
    fn display_is_informative() {
        assert!(GpufsError::CacheExhausted { requested: 3 }
            .to_string()
            .contains('3'));
        assert!(GpufsError::ReadOnly("/f".into()).to_string().contains("/f"));
    }
}
