//! The GPU API layer: `g*` entry points and their handle types
//! (paper §3.2, Table 1).
//!
//! This is the topmost layer of the stack — the calls a kernel makes.
//! Each entry point validates the descriptor's mode, charges the
//! threadblock's virtual clock for the library work, and delegates to the
//! layers below: [`crate::ofile`] for open/close, [`crate::cache::paging`]
//! for faulting pages in (with readahead batching on sequential scans),
//! and [`crate::cache::writeback`] for propagating modifications.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gpusim::BlockCtx;
use simtime::bw_time_ns;

use crate::cache::paging::PagePin;
use crate::config::GOpenMode;
use crate::error::{GpufsError, GpufsResult};
use crate::mount::GpuFsMount;
use crate::rpc::{Request, RespOk};
use crate::table::GFile;

/// A GPUfs file descriptor.
///
/// Descriptors "do not represent individual file opens but merely
/// correspond directly to files" (paper §3.2): every threadblock opening
/// the same path shares the same underlying file object, and `GFd` is a
/// cheap clonable handle to it.
#[derive(Debug, Clone)]
pub struct GFd {
    pub(crate) file: Arc<GFile>,
}

impl GFd {
    /// Path this descriptor names.
    #[must_use]
    pub fn path(&self) -> &str {
        self.file.path()
    }

    /// Open mode.
    #[must_use]
    pub fn mode(&self) -> GOpenMode {
        self.file.mode()
    }

    pub(crate) fn file(&self) -> &Arc<GFile> {
        &self.file
    }
}

/// Metadata returned by [`GpuFsMount::fstat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GStat {
    /// File size at the time of the first `gopen` (paper Table 1).
    pub size: u64,
    /// Host inode number.
    pub ino: u64,
}

/// A mapping produced by [`GpuFsMount::mmap`]: a window into one
/// buffer-cache page, pinned for the mapping's lifetime.
///
/// Like the paper's `gmmap`, the mapping may cover only a prefix of the
/// requested range (never more than one page), and it grants a direct
/// pointer into the GPU buffer cache with no per-byte protection. The
/// Rust port exposes the window read-only; writes go through
/// [`GpuFsMount::write`], which preserves the same consistency semantics.
///
/// **A `GMap` never spans a page boundary.** Buffer-cache pages are not
/// contiguous in the raw data array, so a wider window cannot exist; a
/// caller that wants a multi-page range must either loop `gmmap` over
/// consecutive windows (each call returns how far it got) or use
/// [`GpuFsMount::read`], whose readahead batches the underlying fetches
/// into one RPC. The constructor debug-asserts the single-page invariant
/// so a regression can never silently hand out a mapping that reads past
/// its pinned frame.
pub struct GMap<'m> {
    _pin: PagePin,
    ptr: *const u8,
    len: usize,
    file_offset: u64,
    _mount: std::marker::PhantomData<&'m GpuFsMount>,
}

// SAFETY: the data pointer targets GPU global memory owned by the mount's
// Arc<Gpu>, outliving 'm; the pin prevents the frame from being reused.
unsafe impl Send for GMap<'_> {}
unsafe impl Sync for GMap<'_> {}

impl std::fmt::Debug for GMap<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GMap")
            .field("file_offset", &self.file_offset)
            .field("len", &self.len)
            .finish()
    }
}

impl GMap<'_> {
    /// The mapped bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the pin keeps the frame attached for the mapping's
        // lifetime and the mount (hence the GPU arena) outlives 'm.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the successfully mapped prefix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true: `gmmap` fails instead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// File offset of the first mapped byte.
    #[must_use]
    pub fn file_offset(&self) -> u64 {
        self.file_offset
    }
}

impl GpuFsMount {
    // ==================================================================
    // gread / gwrite
    // ==================================================================

    /// `gread`: read up to `dst.len()` bytes at the explicit `offset`
    /// (GPUfs descriptors have no seek pointer; this is `pread`).
    /// Returns the number of bytes read (short at end of file).
    ///
    /// When the access continues a sequential scan (or spans several
    /// pages itself), a page miss fetches up to
    /// [`crate::GpufsConfig::readahead_pages`] consecutive pages in one
    /// batched RPC instead of one round-trip per page.
    ///
    /// # Errors
    ///
    /// Fails for `O_GWRONCE` files (never readable) or on host errors
    /// while faulting pages in.
    pub fn read(
        &self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        dst: &mut [u8],
    ) -> GpufsResult<usize> {
        let file = fd.file();
        if !file.mode().readable() {
            return Err(GpufsError::WriteOnce(file.path().to_owned()));
        }
        let size = file.size();
        if offset >= size || dst.is_empty() {
            return Ok(0);
        }
        let want = dst.len().min((size - offset) as usize);
        // Trace root: every stage this call causes — pin misses, RPCs,
        // daemon chunks, wire hops — nests under this span. Errors drop
        // the guard without emitting.
        let root = self.tracer.root("gread");
        let t_entry = blk.now();
        let ps = self.config.page_size as u64;
        // With readahead off the stream table is dead weight: skip it so
        // window 1 is bit-for-bit the paper's on-demand paging hot path.
        let sequential =
            self.config.readahead_pages > 1 && file.note_sequential(offset, offset + want as u64);
        let last_page = (offset + want as u64 - 1) / ps;
        let mut done = 0usize;
        while done < want {
            let off = offset + done as u64;
            let (page_idx, in_page) = (off / ps, (off % ps) as usize);
            // A sequential scan opens the full readahead window; a random
            // access batches at most the pages this request itself spans,
            // so no byte is ever fetched that the caller did not ask for.
            let window = if sequential {
                self.config.readahead_pages
            } else {
                ((last_page - page_idx) as usize + 1).min(self.config.readahead_pages)
            };
            let pin = self.pin_page_windowed(blk, file, page_idx, window, last_page)?;
            let n = (self.config.page_size - in_page).min(want - done);
            self.gpu.global().read(
                self.frames.frame_ptr(pin.frame()) + in_page,
                &mut dst[done..done + n],
            );
            blk.advance(
                self.timings.gpu_mem_latency_ns + bw_time_ns(n as u64, self.timings.gpu_mem_mb_s),
            );
            done += n;
        }
        root.finish_attrs(
            t_entry,
            blk.now(),
            &[("offset", offset), ("bytes", done as u64)],
        );
        Ok(done)
    }

    /// `gwrite`: write `src` at the explicit `offset`, extending the file
    /// locally. Data stays in the GPU buffer cache until `gfsync`,
    /// `gmsync`, or eviction propagates it (paper §3.1–3.2). Ends with a
    /// system memory fence as the paper's implementation does (§4.1).
    ///
    /// # Errors
    ///
    /// Fails for read-only descriptors or on host errors while faulting
    /// pages in.
    pub fn write(
        &self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        src: &[u8],
    ) -> GpufsResult<usize> {
        let file = fd.file();
        if !file.mode().writable() {
            return Err(GpufsError::ReadOnly(file.path().to_owned()));
        }
        let root = self.tracer.root("gwrite");
        let t_entry = blk.now();
        // Async write-back throttle: above the high watermark, stall
        // until the background flusher drains the cache to the low one
        // (checked once per call — a single gwrite spans few pages).
        self.throttle_dirty(blk, file);
        let ps = self.config.page_size as u64;
        let mut done = 0usize;
        while done < src.len() {
            let off = offset + done as u64;
            let (page_idx, in_page) = (off / ps, (off % ps) as usize);
            let pin = self.pin_page(blk, file, page_idx)?;
            let n = (self.config.page_size - in_page).min(src.len() - done);
            self.gpu.global().write(
                self.frames.frame_ptr(pin.frame()) + in_page,
                &src[done..done + n],
            );
            blk.advance(
                self.timings.gpu_mem_latency_ns + bw_time_ns(n as u64, self.timings.gpu_mem_mb_s),
            );
            let pf = self.frames.pframe(pin.frame());
            pf.data_size.fetch_max(in_page + n, Ordering::AcqRel);
            if !pf.dirty.swap(true, Ordering::AcqRel) {
                self.dirty.pages.fetch_add(1, Ordering::AcqRel);
            }
            done += n;
        }
        file.grow_to(offset + src.len() as u64);
        blk.threadfence_system();
        root.finish_attrs(
            t_entry,
            blk.now(),
            &[("offset", offset), ("bytes", done as u64)],
        );
        Ok(done)
    }

    // ==================================================================
    // gmmap / gmsync
    // ==================================================================

    /// `gmmap`: map a read window starting at `offset`. As in the paper,
    /// the mapping may cover only a prefix of the request — at most to
    /// the end of the containing buffer-cache page — and points directly
    /// into cache memory with zero copies. Sequential mapping of
    /// consecutive windows triggers the same readahead as [`Self::read`].
    ///
    /// # Errors
    ///
    /// Fails on zero-length requests, offsets at or beyond end of file,
    /// write-once files, or host errors while faulting the page in.
    pub fn mmap<'m>(
        &'m self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        len: usize,
    ) -> GpufsResult<GMap<'m>> {
        let file = fd.file();
        if !file.mode().readable() {
            return Err(GpufsError::WriteOnce(file.path().to_owned()));
        }
        let size = file.size();
        if len == 0 || offset >= size {
            return Err(GpufsError::EmptyMapping);
        }
        // Trace root: like gread, every fault this mapping triggers —
        // pin misses, RPCs, daemon chunks, wire hops — nests under it.
        let root = self.tracer.root("gmmap");
        let t_entry = blk.now();
        let ps = self.config.page_size as u64;
        let (page_idx, in_page) = (offset / ps, (offset % ps) as usize);
        let avail = (self.config.page_size - in_page)
            .min(len)
            .min((size - offset) as usize);
        let window = if self.config.readahead_pages > 1
            && file.note_sequential(offset, offset + avail as u64)
        {
            self.config.readahead_pages
        } else {
            1
        };
        let pin = self.pin_page_windowed(blk, file, page_idx, window, page_idx)?;
        root.finish_attrs(
            t_entry,
            blk.now(),
            &[("offset", offset), ("bytes", avail as u64)],
        );
        let frame_base = self.frames.frame_ptr(pin.frame());
        let ptr = frame_base + in_page;
        // The single-page contract of `GMap` (see its docs): the mapped
        // span must end within the pinned frame, because the next file
        // page lives in an unrelated frame of the raw data array — a
        // span past the frame boundary would read a stranger's bytes.
        // Checked against the actual pointer arithmetic, not the length
        // computation above, so a future change to either side of the
        // math trips it.
        debug_assert!(
            ptr + avail <= frame_base + self.config.page_size,
            "gmmap window [{in_page}, {}) escapes its {}-byte frame; \
             multi-page ranges must go through gread/readahead",
            in_page + avail,
            self.config.page_size
        );
        // SAFETY: the pin blocks eviction and re-initialization; readers
        // of an immutable mapping tolerate concurrent gwrites to other
        // bytes exactly as the paper's relaxed gmmap does.
        let bytes = unsafe { self.gpu.global().slice(ptr, avail) };
        Ok(GMap {
            _pin: pin,
            ptr: bytes.as_ptr(),
            len: avail,
            file_offset: offset,
            _mount: std::marker::PhantomData,
        })
    }

    /// `gmunmap`: release a mapping. Equivalent to dropping it.
    pub fn munmap(&self, blk: &mut BlockCtx<'_>, map: GMap<'_>) {
        blk.advance(self.timings.gpufs_page_op_ns);
        drop(map);
    }

    /// `gmsync`: write one page's modifications back to the host. The
    /// application must coordinate with concurrent updates by other
    /// threadblocks (paper Table 1).
    ///
    /// # Errors
    ///
    /// Fails for modes that never sync, or on host write errors.
    pub fn msync(&self, blk: &mut BlockCtx<'_>, fd: &GFd, offset: u64) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().syncs_to_host() {
            return Err(GpufsError::InvalidMode("gmsync on a non-syncing open mode"));
        }
        let page_idx = offset / self.config.page_size as u64;
        let pin = self.pin_page(blk, file, page_idx)?;
        self.writeback_frame(blk, file, page_idx, pin.frame())?;
        Ok(())
    }

    // ==================================================================
    // gfsync / gunlink / gftruncate / gfstat
    // ==================================================================

    /// `gfsync`: write every dirty cached page of the file back to the
    /// host page cache. Pages pinned by concurrent accesses are skipped,
    /// as in the paper (Table 1). With the background flusher on, this is
    /// *wait-for-drain*: it ships the residual dirty pages itself (so
    /// host errors surface on this call), waits out any flusher batches
    /// still in flight for the file, and synchronizes the caller's clock
    /// to the last shipment — returning only once nothing dirty remains.
    ///
    /// # Errors
    ///
    /// Fails on host write errors.
    pub fn fsync(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().syncs_to_host() {
            return Ok(()); // read-only and O_NOSYNC files have nothing to sync
        }
        let root = self.tracer.root("gfsync");
        let t_entry = blk.now();
        if self.config.dirty_high_pages == 0 {
            // Synchronous write-back: one pass, the paper prototype's
            // semantics (and virtual times) exactly. Every in-flight
            // batch belongs to some foreground caller who awaits its own
            // RPC, so there is no invisible shipment to drain.
            self.flush_dirty(blk, file)?;
            root.finish(t_entry, blk.now());
            return Ok(());
        }
        loop {
            let found = self.flush_dirty(blk, file)?;
            if found == 0 && file.wb_inflight() == 0 {
                break;
            }
            // A flusher batch still in flight may fail and re-arm its
            // pages; wait it out, then rescan so those pages get this
            // call's own (error-surfacing) shipment attempt.
            let mut fruitless = 0usize;
            while file.wb_inflight() > 0 {
                crate::backoff::spin_then_sleep(fruitless, 64);
                fruitless += 1;
            }
        }
        blk.wait_until(file.flush_horizon());
        root.finish(t_entry, blk.now());
        Ok(())
    }

    /// `gfsync` followed by a host `fsync(2)`: force the file to stable
    /// storage, the durability level of CPU `fsync` (paper §3.3).
    ///
    /// # Errors
    ///
    /// Fails on host write errors.
    pub fn fsync_durable(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GpufsResult<()> {
        self.fsync(blk, fd)?;
        if fd.file().mode().syncs_to_host() {
            self.rpc(
                blk,
                Request::Fsync {
                    fd: fd.file().host_fd(),
                },
            )?;
        }
        Ok(())
    }

    /// `gunlink`: remove the file on the host; any local buffer-cache
    /// space is reclaimed immediately (paper Table 1).
    ///
    /// # Errors
    ///
    /// Fails if the host cannot resolve or unlink the path.
    pub fn unlink(&self, blk: &mut BlockCtx<'_>, path: &str) -> GpufsResult<()> {
        let resp = self.rpc(
            blk,
            Request::Stat {
                path: path.to_owned(),
            },
        )?;
        let RespOk::Stat { ino, .. } = resp else {
            unreachable!("stat answers Stat")
        };
        self.rpc(
            blk,
            Request::Unlink {
                path: path.to_owned(),
            },
        )?;
        if let Some(open) = self.tables.get_open(path) {
            self.discard_file_cache(&open);
        }
        if let Some(parked) = self.tables.take_closed(ino) {
            self.discard_file_cache(&parked);
            let _ = self.rpc(
                blk,
                Request::Close {
                    fd: parked.host_fd(),
                },
            )?;
        }
        Ok(())
    }

    /// `gftruncate`: truncate to `size` on the host and drop any cached
    /// pages beyond the new end.
    ///
    /// # Errors
    ///
    /// Fails for read-only descriptors or on host errors.
    pub fn ftruncate(&self, blk: &mut BlockCtx<'_>, fd: &GFd, size: u64) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().writable() {
            return Err(GpufsError::ReadOnly(file.path().to_owned()));
        }
        self.rpc(
            blk,
            Request::Truncate {
                fd: file.host_fd(),
                size,
            },
        )?;
        file.set_size(size);
        let ps = self.config.page_size as u64;
        let first_dropped = size.div_ceil(ps);
        file.tree().for_each_page(|idx, fp| {
            if idx >= first_dropped {
                self.try_discard_page(fp);
            } else if idx == size / ps && !size.is_multiple_of(ps) {
                // Boundary page: clamp valid data and zero the tail so
                // re-extension reads zeros.
                if let Some(frame) = fp.frame() {
                    let keep = (size % ps) as usize;
                    let pf = self.frames.pframe(frame);
                    let ds = pf.data_size.load(Ordering::Acquire);
                    if ds > keep {
                        self.gpu.global().zero(
                            self.frames.frame_ptr(frame) + keep,
                            self.config.page_size - keep,
                        );
                        pf.data_size.store(keep, Ordering::Release);
                    }
                }
            }
        });
        Ok(())
    }

    /// `gfstat`: file metadata. The size reflects the file size at the
    /// time of the first `gopen` (paper Table 1).
    #[must_use]
    pub fn fstat(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GStat {
        blk.advance(self.timings.gpufs_page_op_ns);
        GStat {
            size: fd.file().open_size(),
            ino: fd.file().ino(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpufsConfig;
    use crate::testrig::{rig, run_block};
    use gpusim::{Gpu, Grid};
    use std::sync::Arc;

    #[test]
    fn read_spanning_pages() {
        let r = rig(1);
        let content: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        r.fs.create("/f", &content).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap(); // 4K pages
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 20_000];
            let n = mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert_eq!(n, 20_000);
            assert_eq!(buf, content);
            // Offset read crossing a page boundary.
            let mut small = vec![0u8; 100];
            let n = mount.read(blk, &fd, 4096 - 50, &mut small).unwrap();
            assert_eq!(n, 100);
            assert_eq!(small, content[4096 - 50..4096 + 50]);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn read_past_eof_is_short() {
        let r = rig(1);
        r.fs.create("/f", &[9u8; 100]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 64];
            assert_eq!(mount.read(blk, &fd, 80, &mut buf).unwrap(), 20);
            assert_eq!(mount.read(blk, &fd, 100, &mut buf).unwrap(), 0);
            assert_eq!(mount.read(blk, &fd, 5000, &mut buf).unwrap(), 0);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn sequential_read_batches_rpcs_and_counts_readahead() {
        let r = rig(1);
        let content: Vec<u8> = (0..32 * 4096u32).map(|i| (i % 241) as u8).collect();
        r.fs.create("/seq", &content).unwrap();
        // 64 frames, window 8: a full sequential scan of 32 pages.
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_readahead(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/seq", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 4096];
            for page in 0..32u64 {
                let n = mount.read(blk, &fd, page * 4096, &mut buf).unwrap();
                assert_eq!(n, 4096);
                assert_eq!(buf, content[(page * 4096) as usize..][..4096]);
            }
            mount.close(blk, fd).unwrap();
        });
        // The first access claims the stream (one unbatched miss at page
        // 0); the scan is sequential from the second read on, batching at
        // pages 1, 9, 17, and 25 (the last clamped by EOF to 7 pages).
        let c = mount.counters();
        assert_eq!(c.misses.get(), 32, "every page faulted exactly once");
        assert_eq!(c.batched_rpcs.get(), 4);
        assert_eq!(c.pages_per_rpc.get(), 8 + 8 + 8 + 7);
        assert_eq!(
            c.readahead_hits.get(),
            7 + 7 + 7 + 6,
            "every batched page beyond its miss's own read was a readahead hit"
        );
        // The daemon saw the same four batches.
        assert_eq!(r.host.stats().batched_rpcs.get(), 4);
        assert_eq!(r.host.stats().pages_per_rpc.get(), 31);
        assert_eq!(r.host.stats().bytes_h2d.get(), 32 * 4096);
    }

    #[test]
    fn random_reads_do_not_widen_the_window() {
        let r = rig(1);
        r.fs.create("/rand", &[7u8; 32 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_readahead(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/rand", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 512];
            // Stride backwards so no access continues the previous one.
            for page in (0..32u64).rev().step_by(3) {
                let n = mount.read(blk, &fd, page * 4096 + 128, &mut buf).unwrap();
                assert_eq!(n, 512);
            }
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(c.batched_rpcs.get(), 0, "single-page random misses");
        assert_eq!(c.readahead_hits.get(), 0);
        assert_eq!(c.misses.get(), 11, "exactly the pages touched");
    }

    #[test]
    fn multi_page_random_read_batches_without_counting_readahead() {
        // A random 32 KB read spans 8 pages: those pages may ride one
        // batched RPC (fewer round-trips, same bytes) but they are demand
        // bytes of that same read — not readahead hits — and the batch
        // must never extend past the request.
        let r = rig(1);
        r.fs.create("/span", &[5u8; 64 * 4096]).unwrap();
        let cfg = GpufsConfig::new(4096, 64 * 4096).with_readahead(8);
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/span", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 8 * 4096];
            // A non-zero, non-continuing offset: pure random access.
            let n = mount.read(blk, &fd, 40 * 4096, &mut buf).unwrap();
            assert_eq!(n, 8 * 4096);
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(c.misses.get(), 8, "exactly the request's pages");
        assert_eq!(c.batched_rpcs.get(), 1, "one RPC for the whole span");
        assert_eq!(c.pages_per_rpc.get(), 8);
        assert_eq!(
            c.readahead_hits.get(),
            0,
            "demand bytes of the same read are not readahead hits"
        );
    }

    #[test]
    fn readahead_window_one_is_strictly_on_demand() {
        let r = rig(1);
        r.fs.create("/w1", &[3u8; 16 * 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 64 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/w1", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 16 * 4096];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(c.misses.get(), 16);
        assert_eq!(c.batched_rpcs.get(), 0, "window 1 never batches");
        assert_eq!(c.readahead_hits.get(), 0);
        assert_eq!(
            r.host.stats().requests.get() as usize,
            1 + 16,
            "open + one RPC per page"
        );
    }

    #[test]
    fn close_is_decoupled_from_sync() {
        let r = rig(1);
        r.fs.create("/out", &[0u8; 64]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/out", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, b"dirty").unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/out", 0).unwrap();
        assert_eq!(&data[..5], &[0u8; 5], "gclose must not write back");

        run_block(&r, |blk| {
            let fd = mount.open(blk, "/out", GOpenMode::ReadWrite).unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/out", 0).unwrap();
        assert_eq!(&data[..5], b"dirty", "gfsync propagates");
    }

    #[test]
    fn concurrent_gpu_writers_merge_disjoint_ranges() {
        // Two GPUs write disjoint halves of one page of a shared file via
        // the diff-and-merge protocol (the paper's §3.1 extension).
        let r = rig(2);
        r.fs.create("/shared", &[0u8; 4096]).unwrap();
        let m0 = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        let m1 = r.host.mount(1, GpufsConfig::small_test()).unwrap();
        let work = |mount: &Arc<GpuFsMount>, off: u64, byte: u8| {
            let mount = Arc::clone(mount);
            move |blk: &mut gpusim::BlockCtx<'_>| {
                let fd = mount.open(blk, "/shared", GOpenMode::ReadWrite).unwrap();
                mount.write(blk, &fd, off, &[byte; 1024]).unwrap();
                mount.fsync(blk, &fd).unwrap();
                mount.close(blk, fd).unwrap();
            }
        };
        std::thread::scope(|s| {
            let g0: &Arc<Gpu> = &r.gpus[0];
            let g1: &Arc<Gpu> = &r.gpus[1];
            let k0 = work(&m0, 0, 0xaa);
            let k1 = work(&m1, 2048, 0xbb);
            s.spawn(move || g0.launch(Grid::new(1, 32), 0, k0));
            s.spawn(move || g1.launch(Grid::new(1, 32), 0, k1));
        });
        let (data, _) = r.fs.read_whole("/shared", 0).unwrap();
        assert!(data[..1024].iter().all(|&b| b == 0xaa), "gpu0's half");
        assert!(data[2048..3072].iter().all(|&b| b == 0xbb), "gpu1's half");
        assert!(data[1024..2048].iter().all(|&b| b == 0), "untouched middle");
    }

    #[test]
    fn mmap_returns_prefix_of_page() {
        let r = rig(1);
        let content: Vec<u8> = (0..8192u32).map(|i| (i % 250) as u8).collect();
        r.fs.create("/m", &content).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/m", GOpenMode::ReadOnly).unwrap();
            // Request 8K starting 100 bytes into page 0: only the page
            // remainder maps.
            let map = mount.mmap(blk, &fd, 100, 8192).unwrap();
            assert_eq!(map.len(), 4096 - 100);
            assert_eq!(map.file_offset(), 100);
            assert_eq!(map.bytes(), &content[100..4096]);
            mount.munmap(blk, map);
            // Mapping beyond EOF fails.
            assert!(matches!(
                mount.mmap(blk, &fd, 10_000, 1),
                Err(GpufsError::EmptyMapping)
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn fstat_reports_size_at_open() {
        let r = rig(1);
        r.fs.create("/st", &[1u8; 1000]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/st", GOpenMode::ReadWrite).unwrap();
            assert_eq!(mount.fstat(blk, &fd).size, 1000);
            mount.write(blk, &fd, 2000, b"grow").unwrap();
            assert_eq!(mount.fstat(blk, &fd).size, 1000, "gfstat is size-at-open");
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn write_to_read_only_fd_errors() {
        let r = rig(1);
        r.fs.create("/ro", b"x").unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ro", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.write(blk, &fd, 0, b"y"),
                Err(GpufsError::ReadOnly(_))
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn unlink_reclaims_cache_immediately() {
        let r = rig(1);
        r.fs.create("/gone", &[1u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/gone", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            let free_before = mount.free_frames();
            mount.unlink(blk, "/gone").unwrap();
            assert!(
                mount.free_frames() > free_before,
                "buffer space reclaimed now"
            );
            mount.close(blk, fd).unwrap();
        });
        assert!(!r.fs.exists("/gone"));
    }

    #[test]
    fn ftruncate_drops_tail_pages() {
        let r = rig(1);
        r.fs.create("/tr", &[5u8; 12288]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/tr", GOpenMode::ReadWrite).unwrap();
            let mut buf = [0u8; 12288];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.ftruncate(blk, &fd, 6000).unwrap();
            let mut buf = [0u8; 12288];
            let n = mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert_eq!(n, 6000);
            assert!(buf[..6000].iter().all(|&b| b == 5));
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(r.fs.stat("/tr").unwrap().size, 6000);
    }

    #[test]
    fn stress_mixed_readers_and_writers_over_multi_channel_pool() {
        // The same mixed workload as below, but through 4 RPC channels
        // served by 3 daemon workers: results, accounting invariant, and
        // file contents must be indistinguishable from the single-FIFO
        // rig (the concurrency knobs change scheduling, never bytes).
        use crate::testrig::rig_pool;
        let r = rig_pool(1, 4, 3);
        let base: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 211) as u8).collect();
        r.fs.create("/mc", &base).unwrap();
        let cfg = GpufsConfig::new(4096, 8 * 4096)
            .with_concurrency(4, 3)
            .with_write_batch(4);
        let mount = r.host.mount(0, cfg).unwrap();
        r.gpus[0].launch(Grid::new(8, 32), 0, |blk| {
            let fd = mount.open(blk, "/mc", GOpenMode::ReadWrite).unwrap();
            let my = blk.block_id() as u64;
            mount
                .write(blk, &fd, (8 + my) * 4096, &[my as u8 + 50; 4096])
                .unwrap();
            let mut buf = vec![0u8; 1024];
            for step in 0..6u64 {
                let off = ((my + step) % 8) * 4096 + 512;
                let n = mount.read(blk, &fd, off, &mut buf).unwrap();
                assert_eq!(n, 1024);
                assert_eq!(&buf[..], &base[off as usize..off as usize + 1024]);
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let c = mount.counters();
        assert_eq!(
            c.hits.get() + c.misses.get(),
            c.lockfree_accesses.get() + c.locked_accesses.get(),
            "page-lookup accounting must balance across channels"
        );
        let (data, _) = r.fs.read_whole("/mc", 0).unwrap();
        assert_eq!(&data[..8 * 4096], &base[..8 * 4096], "read half untouched");
        for b in 0..8usize {
            let off = (8 + b) * 4096;
            assert!(
                data[off..off + 4096].iter().all(|&x| x == b as u8 + 50),
                "region {b} lost under cross-channel concurrency"
            );
        }
        assert!(c.write_rpcs.get() > 0, "writes went through WritePages");
    }

    #[test]
    fn stress_mixed_readers_and_writers_under_pressure() {
        let r = rig(1);
        // First half of the file is read-shared; second half is written,
        // one disjoint 4 KB region per block (concurrent access to
        // disjoint ranges is the documented contract, as on real GPUs).
        let base: Vec<u8> = (0..128 * 1024u32).map(|i| (i % 199) as u8).collect();
        r.fs.create("/mix", &base).unwrap();
        // 8 frames of 4 KB against a 128 KB file: constant eviction.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 8 * 4096)).unwrap();
        r.gpus[0].launch(Grid::new(16, 32), 0, |blk| {
            let fd = mount.open(blk, "/mix", GOpenMode::ReadWrite).unwrap();
            let my = blk.block_id() as u64;
            mount
                .write(blk, &fd, (16 + my) * 4096, &[my as u8 + 100; 4096])
                .unwrap();
            let mut buf = vec![0u8; 2048];
            for step in 0..8u64 {
                let off = ((my + step) % 16) * 4096 + 1024;
                let n = mount.read(blk, &fd, off, &mut buf).unwrap();
                assert_eq!(n, 2048);
                assert_eq!(&buf[..], &base[off as usize..off as usize + 2048]);
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/mix", 0).unwrap();
        for b in 0..16usize {
            let off = (16 + b) * 4096;
            assert!(
                data[off..off + 4096].iter().all(|&x| x == b as u8 + 100),
                "region {b} lost under eviction pressure"
            );
        }
        assert!(mount.counters().pages_reclaimed.get() > 0);
    }
}
