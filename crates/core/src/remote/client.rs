//! The remote serve path: `daemon/handlers.rs` + `daemon/pipeline.rs`
//! with every file-system call replaced by a wire round-trip.
//!
//! A proxy-backed daemon worker enters [`serve`] exactly where a local
//! worker enters `handlers::serve`, with the same clock, stat sheets,
//! and I/O-engine knobs. The mirror is deliberately line-for-line: the
//! staged read engine keeps its chunk ring, DMA chain, continuation
//! submits, covered-gate early response, and per-page ready times; the
//! write engine keeps its gather/pwrite overlap. What changes is stage
//! 1 — instead of `fs.pread`/`fs.pwrite` against a local file system,
//! each chunk consults the host page cache and ships one `ReadPages` /
//! `WritePages` frame for the remainder, served by the
//! [`super::StorageServer`] through the same cost model.
//!
//! Under [`simtime::Timings::without_net`] with the host cache disabled,
//! every wire round-trip collapses to the server's own service time at
//! the caller's clock — so this path reproduces the local engine's
//! virtual times bit for bit (asserted by the equivalence tests below
//! and, end to end, by the zero-net BENCH_scale compat run).

use std::sync::Arc;

use gpusim::{DevPtr, Gpu};
use hostfs::{FsError, HostFd};
use simtime::{bw_time_ns, Clock, Nanos};

use super::proto::{WireRequest, WireResponse};
use super::proxy::HostProxy;
use crate::daemon::pipeline::chunk_len;
use crate::daemon::ServeStats;
use crate::rpc::{PageRead, PageWrite, Request, RespOk};

/// Serve one request through the proxy's wire boundary. Mirrors
/// `handlers::serve` argument-for-argument so the daemon worker loop can
/// branch between them on the presence of a proxy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve(
    proxy: &HostProxy,
    gpus: &[Arc<Gpu>],
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    io_depth: usize,
    _gpu: usize,
    req: &Request,
) -> (Result<RespOk, FsError>, Nanos) {
    match req {
        Request::Open {
            path,
            write,
            create,
            truncate,
        } => {
            stats.on(|s| s.opens.incr());
            match proxy.call(
                clock,
                &WireRequest::Open {
                    path: path.clone(),
                    write: *write,
                    create: *create,
                    truncate: *truncate,
                },
            ) {
                Ok(WireResponse::Opened {
                    fd,
                    ino,
                    size,
                    generation,
                }) => (
                    Ok(RespOk::Opened {
                        fd,
                        ino,
                        size,
                        generation,
                    }),
                    clock.now(),
                ),
                Ok(other) => unanswerable("Open", &other),
                Err(e) => (Err(e), clock.now()),
            }
        }
        Request::Close { fd } => done_call(proxy, clock, &WireRequest::Close { fd: *fd }),
        Request::ReadPages { fd, pages, gpu } => read_pages(
            proxy,
            &gpus[*gpu],
            stats,
            clock,
            io_chunk_pages,
            io_depth,
            *fd,
            pages,
        ),
        Request::WritePages { fd, pages, gpu } => {
            write_pages(proxy, &gpus[*gpu], stats, clock, io_chunk_pages, *fd, pages)
        }
        Request::Fsync { fd } => done_call(proxy, clock, &WireRequest::Fsync { fd: *fd }),
        Request::Unlink { path } => {
            done_call(proxy, clock, &WireRequest::Unlink { path: path.clone() })
        }
        Request::Truncate { fd, size } => {
            let st = proxy.fd_state(*fd);
            let r = done_call(
                proxy,
                clock,
                &WireRequest::Truncate {
                    fd: *fd,
                    size: *size,
                },
            );
            // Like write-back: this host must read its own truncation, so
            // drop every cached page past the new end of file. (Bytes
            // below `size` are untouched by a truncate and stay valid.)
            if r.0.is_ok() {
                if let Some(st) = st {
                    proxy
                        .cache()
                        .invalidate_overlapping(st.ino, *size, u64::MAX);
                }
            }
            r
        }
        Request::Stat { path } => {
            match proxy.call(clock, &WireRequest::Stat { path: path.clone() }) {
                Ok(WireResponse::Stat {
                    ino,
                    size,
                    writable,
                    generation,
                }) => (
                    Ok(RespOk::Stat {
                        ino,
                        size,
                        writable,
                        generation,
                    }),
                    clock.now(),
                ),
                Ok(other) => unanswerable("Stat", &other),
                Err(e) => (Err(e), clock.now()),
            }
        }
    }
}

/// A request whose only success shape is `Done`.
fn done_call(
    proxy: &HostProxy,
    clock: &mut Clock,
    req: &WireRequest,
) -> (Result<RespOk, FsError>, Nanos) {
    match proxy.call(clock, req) {
        Ok(WireResponse::Done) => (Ok(RespOk::Done), clock.now()),
        Ok(other) => unanswerable("Done-shaped request", &other),
        Err(e) => (Err(e), clock.now()),
    }
}

/// The in-process server answered a request with a response of the wrong
/// shape — impossible by construction, so a bug, not an I/O condition.
fn unanswerable(what: &str, got: &WireResponse) -> ! {
    unreachable!("storage server answered {what} with {got:?}")
}

/// The virtual cost of serving one page from the host-local cache: a
/// host DRAM copy of the page (no syscall, no wire, no disk).
fn hit_ns(proxy: &HostProxy, bytes: usize) -> Nanos {
    bw_time_ns(bytes as u64, proxy.timings().host_mem_mb_s)
}

/// The read engine of `daemon/pipeline.rs` with stage 1 replaced by
/// host-cache lookups plus one `ReadPages` frame per chunk for the
/// misses. Stage 2 — the chained scatter-gather DMA with its ring bound,
/// continuation submits, covered gate, and per-page ready times — is
/// copied unchanged.
#[allow(clippy::too_many_arguments)]
fn read_pages(
    proxy: &HostProxy,
    gpu: &Gpu,
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    io_depth: usize,
    fd: HostFd,
    pages: &[PageRead],
) -> (Result<RespOk, FsError>, Nanos) {
    if pages.len() > 1 {
        stats.on(|s| {
            s.batched_rpcs.incr();
            s.pages_per_rpc.add(pages.len() as u64);
        });
    }
    let deep = io_depth > 2;
    let submit_ns = proxy.timings().dma_chunk_ns;
    let fd_state = proxy.fd_state(fd);
    let mut ns = Vec::with_capacity(pages.len());
    let mut ready: Vec<Nanos> = Vec::with_capacity(pages.len());
    let mut free_at: Vec<Nanos> = Vec::new();
    let mut dma_end: Nanos = 0;
    let mut first_chunk = true;
    for (j, chunk) in pages
        .chunks(chunk_len(io_chunk_pages, pages.len()))
        .enumerate()
    {
        if deep && j >= io_depth {
            clock.wait_until(free_at[j - io_depth]);
        }
        // Stage 1 — fill this chunk's staging buffers: host-cache hits
        // cost a local DRAM copy; the misses ride one wire round-trip,
        // which the server runs through the same pread sequence the
        // local engine would.
        let mut staging: Vec<Vec<u8>> = vec![Vec::new(); chunk.len()];
        let mut misses: Vec<usize> = Vec::new();
        for (i, page) in chunk.iter().enumerate() {
            let cached = fd_state.and_then(|st| {
                proxy
                    .cache()
                    .lookup(st.ino, page.offset, st.generation, page.len)
            });
            match cached {
                Some(mut data) => {
                    data.truncate(page.len);
                    clock.advance(hit_ns(proxy, data.len()));
                    staging[i] = data;
                }
                None => misses.push(i),
            }
        }
        if !misses.is_empty() {
            let wire_pages: Vec<(u64, u32)> = misses
                .iter()
                .map(|&i| (chunk[i].offset, chunk[i].len as u32))
                .collect();
            match proxy.call(
                clock,
                &WireRequest::ReadPages {
                    fd,
                    pages: wire_pages,
                },
            ) {
                Ok(WireResponse::Read { pages: got }) => {
                    for (&i, data) in misses.iter().zip(got) {
                        if let Some(st) = fd_state {
                            proxy.cache().insert(
                                st.ino,
                                chunk[i].offset,
                                st.generation,
                                data.clone(),
                            );
                        }
                        staging[i] = data;
                    }
                }
                Ok(other) => unanswerable("ReadPages", &other),
                Err(e) => return (Err(e), clock.now()),
            }
        }
        // Stage 2 — ship the chunk asynchronously, exactly as the local
        // engine does.
        let parts: Vec<(&[u8], DevPtr)> = staging
            .iter()
            .zip(chunk)
            .filter(|(buf, _)| !buf.is_empty())
            .map(|(buf, page)| (buf.as_slice(), page.dst))
            .collect();
        let chunk_ready = if parts.is_empty() {
            0
        } else {
            if !first_chunk {
                clock.advance(submit_ns);
            }
            let r = gpu.dma_h2d_scattered_chunk(&parts, clock.now().max(dma_end), first_chunk);
            let chunk_bytes: u64 = parts.iter().map(|(b, _)| b.len() as u64).sum();
            stats.on(|s| {
                s.bytes_h2d.add(chunk_bytes);
                s.read_dma_chunks.incr();
            });
            dma_end = r.end;
            first_chunk = false;
            r.end
        };
        free_at.push(chunk_ready);
        for buf in &staging {
            ns.push(buf.len());
            ready.push(if buf.is_empty() { 0 } else { chunk_ready });
        }
    }
    let t = if deep {
        let covered = free_at.len().saturating_sub(io_depth - 2).max(1);
        let gate = free_at[..covered].iter().copied().max().unwrap_or(0);
        gate.max(clock.now())
    } else {
        dma_end.max(clock.now())
    };
    if !deep {
        ready.fill(t);
    }
    (Ok(RespOk::Read { ns, ready }), t)
}

/// The write engine of `daemon/pipeline.rs` with the serial `pwrite`
/// lane replaced by one `WritePages` frame per chunk — write-back
/// batched over the wire. The D2H gather chain is copied unchanged, and
/// every successfully shipped batch invalidates the written ranges in
/// the host cache so this host reads its own writes.
fn write_pages(
    proxy: &HostProxy,
    gpu: &Gpu,
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    fd: HostFd,
    pages: &[PageWrite],
) -> (Result<RespOk, FsError>, Nanos) {
    if pages.len() > 1 {
        stats.on(|s| {
            s.batched_write_rpcs.incr();
            s.pages_per_write_rpc.add(pages.len() as u64);
        });
    }
    let issue = clock.now();
    let submit_ns = proxy.timings().dma_chunk_ns;
    let fd_state = proxy.fd_state(fd);
    if pages.iter().all(|pw| pw.extents.is_empty()) {
        // The local engine answers an empty batch from the generation
        // table alone; remotely that is one payload-free frame.
        return match proxy.call(
            clock,
            &WireRequest::WritePages {
                fd,
                extents: vec![],
            },
        ) {
            Ok(WireResponse::Wrote { n, generation }) => (
                Ok(RespOk::Wrote {
                    n: n as usize,
                    generation,
                }),
                clock.now(),
            ),
            Ok(other) => unanswerable("WritePages", &other),
            Err(e) => (Err(e), clock.now()),
        };
    }
    let mut gather_end: Nanos = 0;
    let mut first_chunk = true;
    let mut written = 0usize;
    let mut generation = 0u64;
    for chunk in pages.chunks(chunk_len(io_chunk_pages, pages.len())) {
        let mut srcs: Vec<(DevPtr, u64)> = Vec::new(); // (gpu addr, file off)
        let mut staging: Vec<Vec<u8>> = Vec::new();
        for pw in chunk {
            for &(off, len) in &pw.extents {
                srcs.push((pw.src + off as usize, pw.page_offset + u64::from(off)));
                staging.push(vec![0u8; len as usize]);
            }
        }
        if srcs.is_empty() {
            continue;
        }
        if !first_chunk {
            clock.advance(submit_ns);
        }
        let mut parts: Vec<(DevPtr, &mut [u8])> = srcs
            .iter()
            .zip(staging.iter_mut())
            .map(|(&(src, _), buf)| (src, buf.as_mut_slice()))
            .collect();
        let r = gpu.dma_d2h_scattered_chunk(&mut parts, issue.max(gather_end), first_chunk);
        drop(parts);
        let chunk_bytes: u64 = staging.iter().map(|b| b.len() as u64).sum();
        stats.on(|s| {
            s.bytes_d2h.add(chunk_bytes);
            s.write_dma_chunks.incr();
        });
        gather_end = r.end;
        first_chunk = false;
        // This chunk's bytes must be in host memory before they can go
        // on the wire.
        clock.wait_until(r.end);
        let extents: Vec<(u64, Vec<u8>)> = srcs
            .iter()
            .zip(staging)
            .map(|(&(_, file_off), data)| (file_off, data))
            .collect();
        let ranges: Vec<(u64, u64)> = extents
            .iter()
            .map(|(off, data)| (*off, off + data.len() as u64))
            .collect();
        match proxy.call(clock, &WireRequest::WritePages { fd, extents }) {
            Ok(WireResponse::Wrote { n, generation: g }) => {
                written += n as usize;
                generation = g;
                proxy.wire().writeback_batches.incr();
                if let Some(st) = fd_state {
                    for (start, end) in ranges {
                        proxy.cache().invalidate_overlapping(st.ino, start, end);
                    }
                }
            }
            Ok(other) => unanswerable("WritePages", &other),
            Err(e) => return (Err(e), clock.now()),
        }
    }
    (
        Ok(RespOk::Wrote {
            n: written,
            generation,
        }),
        clock.now(),
    )
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use gpusim::{DevPtr, Gpu, GpuSpec};
    use hostfs::{HostFs, HostFsConfig};
    use simtime::Timings;

    use crate::config::GpufsConfig;
    use crate::daemon::GpufsHost;
    use crate::remote::{HostProxy, StorageServer};
    use crate::rpc::{PageRead, PageWrite, Request, RespOk};

    const PAGE: usize = 4096;

    fn no_net_fs() -> Arc<HostFs> {
        let config = HostFsConfig {
            timings: Timings::default().without_net(),
            ..HostFsConfig::default()
        };
        Arc::new(HostFs::new(config))
    }

    fn payload(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 + 13) as u8).collect()
    }

    fn local_host(chunk: usize, depth: usize) -> GpufsHost {
        let config = GpufsConfig::default()
            .with_io_chunk(chunk)
            .with_io_depth(depth);
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        GpufsHost::with_config(no_net_fs(), vec![gpu], &config)
    }

    fn proxied_host(chunk: usize, depth: usize, cache_pages: usize) -> GpufsHost {
        let config = GpufsConfig::default()
            .with_io_chunk(chunk)
            .with_io_depth(depth);
        let server = Arc::new(StorageServer::new(no_net_fs()));
        let proxy = Arc::new(HostProxy::new(server, cache_pages));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        GpufsHost::with_proxy(proxy, vec![gpu], &config)
    }

    /// Debug-render one full daemon round-trip (result *and* completion
    /// time), so scripts can be compared across hosts as plain strings.
    fn call(h: &GpufsHost, req: Request) -> String {
        format!("{:?}", h.hub().call(0, 0, 0, 0, &Timings::default(), req))
    }

    fn open(h: &GpufsHost, path: &str, write: bool) -> u64 {
        let (ok, _) = h
            .hub()
            .call(
                0,
                0,
                0,
                0,
                &Timings::default(),
                Request::Open {
                    path: path.into(),
                    write,
                    create: false,
                    truncate: false,
                },
            )
            .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!("expected Opened, got {ok:?}")
        };
        fd
    }

    fn read_req(fd: u64, dsts: &[DevPtr], first_page: u64) -> Request {
        Request::ReadPages {
            fd,
            pages: dsts
                .iter()
                .enumerate()
                .map(|(i, &dst)| PageRead {
                    offset: (first_page + i as u64) * PAGE as u64,
                    len: PAGE,
                    dst,
                })
                .collect(),
            gpu: 0,
        }
    }

    /// Run the identical request script against a host and transcribe
    /// every (result, completion-time) pair plus what landed in GPU
    /// memory. The script covers all eight request kinds, a short-at-EOF
    /// page, a page fully past EOF, and two error paths.
    fn transcript(h: &GpufsHost) -> Vec<String> {
        let mut out = Vec::new();
        h.fs()
            .create("/data", &payload(PAGE * 5 + PAGE / 2))
            .unwrap();
        let fd = open(h, "/data", false);
        let dsts: Vec<DevPtr> = (0..7)
            .map(|_| h.gpus()[0].global().alloc(PAGE).unwrap())
            .collect();
        out.push(call(h, read_req(fd, &dsts, 0)));
        let wfd = open(h, "/data", true);
        out.push(call(
            h,
            Request::WritePages {
                fd: wfd,
                pages: vec![
                    PageWrite {
                        src: dsts[0],
                        page_offset: 0,
                        extents: vec![(16, 64), (512, 128)],
                    },
                    PageWrite {
                        src: dsts[1],
                        page_offset: PAGE as u64,
                        extents: vec![(0, 256)],
                    },
                ],
                gpu: 0,
            },
        ));
        out.push(call(h, Request::Fsync { fd: wfd }));
        out.push(call(
            h,
            Request::Stat {
                path: "/data".into(),
            },
        ));
        out.push(call(
            h,
            Request::Truncate {
                fd: wfd,
                size: PAGE as u64 * 3,
            },
        ));
        // Reread after the truncate: pages now past EOF move no bytes.
        out.push(call(h, read_req(fd, &dsts, 0)));
        out.push(call(h, Request::Close { fd: wfd }));
        out.push(call(h, Request::Close { fd }));
        out.push(call(
            h,
            Request::Unlink {
                path: "/nope".into(),
            },
        ));
        out.push(call(
            h,
            Request::Open {
                path: "/missing".into(),
                write: false,
                create: false,
                truncate: false,
            },
        ));
        for &dst in &dsts {
            let mut buf = vec![0u8; PAGE];
            h.gpus()[0].global().read(dst, &mut buf);
            out.push(format!("{buf:?}"));
        }
        out.push(format!("{:?}", h.stats().snapshot()));
        out
    }

    /// The tentpole's time-transparency claim, end to end through the
    /// daemon worker loop: with zero-cost links and the host cache off, a
    /// proxy-backed host reproduces the local host's results, virtual
    /// completion times, GPU memory contents, and daemon counters
    /// *exactly* — across the serialized, pipelined, and deep engines.
    #[test]
    fn zero_net_proxy_daemon_matches_the_local_daemon_exactly() {
        for (chunk, depth) in [(0, 2), (2, 2), (2, 4)] {
            let mut local = local_host(chunk, depth);
            let mut remote = proxied_host(chunk, depth, 0);
            assert_eq!(
                transcript(&local),
                transcript(&remote),
                "engine divergence at io_chunk_pages={chunk}, io_depth={depth}"
            );
            local.shutdown();
            remote.shutdown();
        }
    }

    /// The host cache changes virtual time (hits cost a DRAM copy, not a
    /// wire round-trip), but never what the GPU reads.
    #[test]
    fn cached_proxy_preserves_data_and_results() {
        let mut local = local_host(2, 2);
        let mut remote = proxied_host(2, 2, 64);
        let a = transcript(&local);
        let b = transcript(&remote);
        // Compare only the GPU-memory and counter lines (the data
        // plane): the timing lines legitimately differ once hits bypass
        // the wire.
        let data = |t: &[String]| -> Vec<String> {
            t.iter().filter(|s| s.starts_with('[')).cloned().collect()
        };
        assert_eq!(data(&a), data(&b));
        local.shutdown();
        remote.shutdown();
    }

    /// Satellite (b): the host-cache counters are exact, not approximate.
    /// One batch of four pages misses four times; the repeat hits four
    /// times without touching the wire; a write-back invalidates exactly
    /// the overlapped page; a close-to-open reopen invalidates the rest
    /// lazily (on the next lookup, never eagerly).
    #[test]
    fn host_cache_counters_are_exact_through_the_daemon() {
        let h = proxied_host(0, 2, 64);
        #[allow(clippy::expect_used)]
        let proxy = Arc::clone(h.proxy().expect("proxied host"));
        h.fs().create("/c", &payload(PAGE * 4)).unwrap();
        let dsts: Vec<DevPtr> = (0..4)
            .map(|_| h.gpus()[0].global().alloc(PAGE).unwrap())
            .collect();

        let fd = open(&h, "/c", false);
        let wire_after_open = proxy.wire().wire_rpcs.get();
        call(&h, read_req(fd, &dsts, 0));
        let c = proxy.cache().stats();
        assert_eq!((c.hits.get(), c.misses.get()), (0, 4));
        assert_eq!(c.insertions.get(), 4);
        assert_eq!(proxy.wire().wire_rpcs.get(), wire_after_open + 1);

        // All four pages hit: no wire traffic at all for the repeat.
        call(&h, read_req(fd, &dsts, 0));
        let c = proxy.cache().stats();
        assert_eq!((c.hits.get(), c.misses.get()), (4, 4));
        assert_eq!(proxy.wire().wire_rpcs.get(), wire_after_open + 1);

        // A write-back batch invalidates exactly the overlapped page.
        let wfd = open(&h, "/c", true);
        call(
            &h,
            Request::WritePages {
                fd: wfd,
                pages: vec![PageWrite {
                    src: dsts[1],
                    page_offset: PAGE as u64,
                    extents: vec![(0, 64)],
                }],
                gpu: 0,
            },
        );
        assert_eq!(proxy.wire().writeback_batches.get(), 1);
        assert_eq!(proxy.cache().len(), 3);
        call(&h, read_req(fd, &dsts, 0));
        let c = proxy.cache().stats();
        assert_eq!((c.hits.get(), c.misses.get()), (7, 5));
        assert_eq!(c.insertions.get(), 5);
        assert_eq!(
            c.lazy_invalidations.get(),
            0,
            "write-back removal is not lazy invalidation"
        );

        // Close-to-open: the reopened descriptor sees the writer's
        // generation, so every surviving entry is invalidated lazily on
        // its next lookup — exactly four, none of them eagerly.
        call(&h, Request::Close { fd: wfd });
        call(&h, Request::Close { fd });
        let fd2 = open(&h, "/c", false);
        assert_eq!(proxy.cache().len(), 4, "reopen alone evicts nothing");
        call(&h, read_req(fd2, &dsts, 0));
        let c = proxy.cache().stats();
        assert_eq!(c.lazy_invalidations.get(), 4);
        assert_eq!((c.hits.get(), c.misses.get()), (7, 9));
        assert_eq!(c.insertions.get(), 9);
    }
}
