//! The host-side proxy: the only thing on a host that speaks frames.
//!
//! Each host's daemon workers hand their storage operations to one
//! [`HostProxy`], which serializes them through [`super::proto`], moves
//! the frames over a simulated network link (a per-direction
//! [`BandwidthResource`] plus a fixed round-trip charge — the exact
//! shape of the PCIe model), and decodes the response. Storage state
//! never lives here: the proxy holds only a descriptor table mirroring
//! what the server told it (`fd → (ino, generation)`) and the
//! [`HostPageCache`] those generations keep honest.
//!
//! The link cost model deliberately mirrors `Timings::net_rtt_ns` /
//! `net_mb_s` the way DMA mirrors `dma_setup_ns` / `pcie_mb_s`: under
//! [`simtime::Timings::without_net`] both directions are free and the
//! fixed charge is zero, so a proxied operation lands on *exactly* the
//! virtual times the local `daemon/handlers.rs` path produces — the
//! invariant the zero-net BENCH_scale compat run asserts to four digits.

use std::collections::HashMap;
use std::sync::Arc;

use hostfs::{FsError, HostFd, Ino};
use parking_lot::Mutex;
use simtime::{BandwidthResource, Clock, Counter, Nanos, Timings};

use super::cache::HostPageCache;
use super::proto::{self, WireRequest, WireResponse};
use super::server::StorageServer;

/// Wire-level activity counters of one host link.
#[derive(Debug, Default)]
pub struct WireStats {
    /// Round-trips issued (one request frame, one response frame).
    pub wire_rpcs: Counter,
    /// Request-frame bytes pushed up the link.
    pub wire_req_bytes: Counter,
    /// Response-frame bytes pulled down the link.
    pub wire_resp_bytes: Counter,
    /// Write-back batches shipped (non-empty `WritePages` frames).
    pub writeback_batches: Counter,
}

impl WireStats {
    /// Every counter as a `(name, value)` row, mirroring
    /// [`crate::DaemonStats::snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("wire_rpcs", self.wire_rpcs.get()),
            ("wire_req_bytes", self.wire_req_bytes.get()),
            ("wire_resp_bytes", self.wire_resp_bytes.get()),
            ("writeback_batches", self.writeback_batches.get()),
        ]
    }
}

/// What the proxy remembers about a descriptor the server opened for it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FdState {
    /// Inode behind the descriptor (cache key component).
    pub ino: Ino,
    /// Consistency generation the descriptor last synchronized at —
    /// set at open, advanced by this host's own write-backs.
    pub generation: u64,
}

/// One host's gateway to the [`StorageServer`].
#[derive(Debug)]
pub struct HostProxy {
    server: Arc<StorageServer>,
    timings: Timings,
    rtt_ns: Nanos,
    up: BandwidthResource,
    down: BandwidthResource,
    cache: HostPageCache,
    fds: Mutex<HashMap<HostFd, FdState>>,
    wire: WireStats,
}

impl HostProxy {
    /// A proxy to `server` over a link calibrated by the server's
    /// timing sheet, with a host page cache of `cache_pages` entries
    /// (`0` disables the cache).
    #[must_use]
    pub fn new(server: Arc<StorageServer>, cache_pages: usize) -> Self {
        let timings = server.timings().clone();
        Self {
            rtt_ns: timings.net_rtt_ns,
            up: BandwidthResource::new(timings.net_mb_s, 0),
            down: BandwidthResource::new(timings.net_mb_s, 0),
            cache: HostPageCache::new(cache_pages, 8),
            fds: Mutex::new(HashMap::new()),
            wire: WireStats::default(),
            timings,
            server,
        }
    }

    /// The storage server this proxy frames to.
    #[must_use]
    pub fn server(&self) -> &Arc<StorageServer> {
        &self.server
    }

    /// The platform timing sheet (shared with the server).
    #[must_use]
    pub fn timings(&self) -> &Timings {
        &self.timings
    }

    /// The host-local page cache.
    #[must_use]
    pub fn cache(&self) -> &HostPageCache {
        &self.cache
    }

    /// Wire-level counters of this host's link.
    #[must_use]
    pub fn wire(&self) -> &WireStats {
        &self.wire
    }

    /// Forget queued link work (used between benchmark phases, next to
    /// `HostFs::reset_device_time`).
    pub fn reset_link(&self) {
        self.up.reset();
        self.down.reset();
    }

    /// What this proxy knows about `fd`, if the server opened it here.
    pub(crate) fn fd_state(&self, fd: HostFd) -> Option<FdState> {
        self.fds.lock().get(&fd).copied()
    }

    /// Ship one request over the wire and wait for the response,
    /// advancing `clock` across the full round-trip: uplink serialization
    /// plus half the fixed round-trip, the server's own service time,
    /// then downlink serialization plus the other half.
    ///
    /// The descriptor table is maintained here, from response traffic
    /// alone: `Opened` inserts, `Wrote` advances the generation,
    /// `Close` removes.
    ///
    /// # Errors
    ///
    /// Returns the [`FsError`] the server answered with. Frame-level
    /// failures cannot occur on this path — the proxy authored the
    /// request frame itself — so they are a panic, not an error.
    pub(crate) fn call(
        &self,
        clock: &mut Clock,
        req: &WireRequest,
    ) -> Result<WireResponse, FsError> {
        // The round-trip span opens before the frame is authored so the
        // encoded ctx names it as the server-side parent.
        let sp = obs::span("net_roundtrip");
        let issued = clock.now();
        let frame = proto::encode_request_ctx(req, obs::current());
        // Charge the link (and the byte counters) for the frame minus
        // the trace ctx, so tracing never perturbs virtual time.
        let wire_len = proto::charged_len(&frame) as u64;
        self.wire.wire_rpcs.incr();
        self.wire.wire_req_bytes.add(wire_len);
        let arrival = self.up.transfer(clock.now(), wire_len).end + self.rtt_ns / 2;
        // Like `RpcHub::call`, the service wait is a blocking region:
        // holding any lock across a storage round-trip stalls every
        // other GPU on this host for a network RTT, and lockcheck's
        // PR 6 detector flags exactly that.
        let served = parking_lot::lockcheck::blocking_region("net-roundtrip", || {
            self.server.serve_frame(&frame, arrival)
        });
        #[allow(clippy::expect_used)]
        let (resp_frame, server_end) = served.expect("proxy-authored frames are well-formed");
        self.wire.wire_resp_bytes.add(resp_frame.len() as u64);
        let end = self.down.transfer(server_end, resp_frame.len() as u64).end
            + (self.rtt_ns - self.rtt_ns / 2);
        clock.wait_until(end);
        sp.finish_attrs(issued, clock.now(), &[("req_bytes", wire_len)]);
        #[allow(clippy::expect_used)]
        let resp =
            proto::decode_response(&resp_frame).expect("server response frames are well-formed");
        match (&resp, req) {
            (
                WireResponse::Opened {
                    fd,
                    ino,
                    generation,
                    ..
                },
                _,
            ) => {
                self.fds.lock().insert(
                    *fd,
                    FdState {
                        ino: *ino,
                        generation: *generation,
                    },
                );
            }
            (WireResponse::Wrote { generation, .. }, WireRequest::WritePages { fd, .. }) => {
                if let Some(st) = self.fds.lock().get_mut(fd) {
                    st.generation = *generation;
                }
            }
            (WireResponse::Done, WireRequest::Close { fd }) => {
                self.fds.lock().remove(fd);
            }
            _ => {}
        }
        match resp {
            WireResponse::Err(e) => Err(e),
            ok => Ok(ok),
        }
    }
}

#[allow(clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use hostfs::{HostFs, HostFsConfig};
    use simtime::bw_time_ns;

    fn proxy_with(timings: Timings, cache_pages: usize) -> HostProxy {
        let fs = Arc::new(HostFs::new(HostFsConfig {
            timings,
            ..HostFsConfig::default()
        }));
        fs.create("/w", &vec![3u8; 128 << 10]).unwrap();
        HostProxy::new(Arc::new(StorageServer::new(fs)), cache_pages)
    }

    fn open(p: &HostProxy, clock: &mut Clock, path: &str) -> HostFd {
        let resp = p
            .call(
                clock,
                &WireRequest::Open {
                    path: path.into(),
                    write: true,
                    create: false,
                    truncate: false,
                },
            )
            .expect("open");
        let WireResponse::Opened { fd, .. } = resp else {
            panic!("expected Opened, got {resp:?}");
        };
        fd
    }

    #[test]
    fn zero_net_round_trip_is_time_transparent() {
        let p = proxy_with(Timings::default().without_net(), 0);
        let mut clock = Clock::starting_at(500);
        let fd = open(&p, &mut clock, "/w");
        let t_proxy = clock.now();
        // The identical sequence against the server directly.
        let fs = Arc::clone(p.server().fs());
        fs.close(fd).expect("close the proxy's fd");
        fs.reset_device_time();
        let (frame, t_direct) = p
            .server()
            .serve_frame(
                &proto::encode_request(&WireRequest::Open {
                    path: "/w".into(),
                    write: true,
                    create: false,
                    truncate: false,
                }),
                500,
            )
            .expect("direct frame");
        assert!(matches!(
            proto::decode_response(&frame).expect("response"),
            WireResponse::Opened { .. }
        ));
        assert_eq!(t_proxy, t_direct, "a free link adds zero virtual time");
    }

    #[test]
    fn link_charges_rtt_and_bandwidth_both_ways() {
        let t = Timings {
            net_rtt_ns: 10_000,
            net_mb_s: 1000.0,
            ..Timings::default()
        };
        let p = proxy_with(t, 0);
        let mut clock = Clock::starting_at(0);
        let fd = open(&p, &mut clock, "/w");
        let t_open = clock.now();
        let before = clock.now();
        let resp = p
            .call(
                &mut clock,
                &WireRequest::ReadPages {
                    fd,
                    pages: vec![(0, 64 << 10)],
                },
            )
            .expect("read");
        let WireResponse::Read { pages } = resp else {
            panic!("expected Read, got {resp:?}");
        };
        assert_eq!(pages[0].len(), 64 << 10);
        // The 64 KiB payload rides the downlink: the round trip must
        // cost at least the RTT plus the payload serialization.
        let floor = 10_000 + bw_time_ns(64 << 10, 1000.0);
        assert!(
            clock.now() - before >= floor,
            "read round-trip {} must exceed link floor {floor}",
            clock.now() - before
        );
        assert!(t_open >= 10_000, "even tiny frames pay the rtt");
        let w = p.wire();
        assert_eq!(w.wire_rpcs.get(), 2);
        assert!(w.wire_resp_bytes.get() > (64 << 10));
        assert!(w.wire_req_bytes.get() < 200, "requests are tiny");
    }

    #[test]
    fn descriptor_table_follows_response_traffic() {
        let p = proxy_with(Timings::default().without_net(), 4);
        let mut clock = Clock::starting_at(0);
        let fd = open(&p, &mut clock, "/w");
        let st = p.fd_state(fd).expect("opened fd is tracked");
        let gen_open = st.generation;
        let resp = p
            .call(
                &mut clock,
                &WireRequest::WritePages {
                    fd,
                    extents: vec![(0, vec![9u8; 64])],
                },
            )
            .expect("write");
        let WireResponse::Wrote { generation, .. } = resp else {
            panic!("expected Wrote, got {resp:?}");
        };
        assert!(generation > gen_open, "write-back advances the generation");
        assert_eq!(
            p.fd_state(fd).expect("still tracked").generation,
            generation,
            "the proxy reads its own writes at the new generation"
        );
        p.call(&mut clock, &WireRequest::Close { fd })
            .expect("close");
        assert!(p.fd_state(fd).is_none(), "close drops the entry");
    }

    #[test]
    fn server_errors_surface_as_fs_errors() {
        let p = proxy_with(Timings::default().without_net(), 0);
        let mut clock = Clock::starting_at(0);
        let err = p
            .call(&mut clock, &WireRequest::Fsync { fd: 404 })
            .expect_err("bad descriptor");
        assert_eq!(err, FsError::BadDescriptor(404));
    }

    #[test]
    fn concurrent_hosts_share_the_server_but_not_the_link() {
        // Two proxies to one server: wire counters stay per-host while
        // the served frames aggregate server-side.
        let fs = Arc::new(HostFs::new(HostFsConfig {
            timings: Timings::default().without_net(),
            ..HostFsConfig::default()
        }));
        fs.create("/s", b"shared").unwrap();
        let server = Arc::new(StorageServer::new(fs));
        let a = HostProxy::new(Arc::clone(&server), 0);
        let b = HostProxy::new(Arc::clone(&server), 0);
        let mut ca = Clock::starting_at(0);
        let mut cb = Clock::starting_at(0);
        open(&a, &mut ca, "/s");
        open(&b, &mut cb, "/s");
        open(&b, &mut cb, "/s");
        assert_eq!(a.wire().wire_rpcs.get(), 1);
        assert_eq!(b.wire().wire_rpcs.get(), 2);
        assert_eq!(server.stats().frames.get(), 3);
    }
}
