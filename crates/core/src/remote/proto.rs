//! The hand-rolled wire format of the host↔storage-server boundary.
//!
//! The cross-host split serializes the daemon's existing request/response
//! surface ([`crate::rpc::Request`] / [`crate::rpc::RespOk`]) into
//! explicit length-prefixed frames — no serde, no derive magic, every
//! byte written and checked by hand like the repo's shims. What travels
//! is the *storage* half of each request: page reads carry `(offset,
//! len)` descriptors (the GPU frame addresses stay host-side, DMA is the
//! proxy's job), page writes carry the gathered dirty-extent bytes.
//!
//! ## Frame layout (version 2)
//!
//! ```text
//! +------+---------+------+-------+-------------+-----------+---------...
//! | GFSW | version | kind | flags | payload len | trace ctx | payload
//! | 4 B  | u16 LE  | u8   | u8    | u32 LE      | 0 or 16 B |
//! +------+---------+------+-------+-------------+-----------+---------...
//! ```
//!
//! The flags byte is new in version 2. Its only defined bit,
//! [`FLAG_TRACE_CTX`], declares a 16-byte trace context (trace id +
//! parent span id, both u64 LE) between the header and the payload, so
//! a storage server can parent its spans under the host-side RPC that
//! shipped the frame. Version-1 frames (11-byte header, no flags, no
//! ctx) still decode — they simply carry [`obs::TraceCtx::NONE`].
//!
//! Decoding *rejects* — it never panics: truncated buffers, bad magic,
//! unknown versions or kinds, non-UTF-8 paths, undeclared trailing bytes
//! and out-of-spec flag bits all come back as a [`ProtoError`]. A server
//! fed garbage answers with an error, it does not fall over.

use hostfs::{FsError, HostFd, Ino};
use obs::TraceCtx;

/// Frame magic: the first four bytes of every well-formed frame.
pub const MAGIC: [u8; 4] = *b"GFSW";

/// Wire-format version this build emits. Decoders also accept version-1
/// frames (no flags byte, no trace ctx) and reject everything else
/// (`ProtoError::BadVersion`) instead of guessing.
pub const VERSION: u16 = 2;

/// Fixed frame header size: magic + version + kind + flags + payload
/// length. The optional trace context rides *after* this header.
pub const HEADER_LEN: usize = 4 + 2 + 1 + 1 + 4;

/// Version-1 header size: magic + version + kind + payload length.
const V1_HEADER_LEN: usize = 4 + 2 + 1 + 4;

/// Frame flag: a 16-byte trace context (trace id + span id, u64 LE
/// each) sits between the header and the payload.
pub const FLAG_TRACE_CTX: u8 = 1;

/// Bytes of the optional trace context.
const CTX_LEN: usize = 8 + 8;

/// Why a frame failed to decode. Every variant is a *rejection* — the
/// decoders return these, they never panic on hostile input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Buffer ends before the declared structure does.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic,
    /// Frame speaks a version this build does not (the version found).
    BadVersion(u16),
    /// Structurally invalid payload (unknown kind, bad UTF-8, stray
    /// flag bits, trailing bytes, ...).
    Corrupt(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame truncated"),
            ProtoError::BadMagic => write!(f, "bad frame magic"),
            ProtoError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            ProtoError::Corrupt(what) => write!(f, "corrupt frame: {what}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A storage request on the wire — the server-relevant half of
/// [`crate::rpc::Request`], with GPU-memory addresses stripped (reads)
/// or already resolved to bytes by the proxy's D2H gather (writes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Open (and possibly create) a file on the storage server.
    Open {
        /// Absolute path on the server's file system.
        path: String,
        /// Write access requested.
        write: bool,
        /// Create if missing.
        create: bool,
        /// Truncate on open.
        truncate: bool,
    },
    /// Close a server-side descriptor.
    Close {
        /// Descriptor from a previous [`WireRequest::Open`].
        fd: HostFd,
    },
    /// Read a batch of page extents: `(file offset, length)` pairs in
    /// ascending file order. One frame per pipeline chunk, so the
    /// server's file I/O of chunk *k+1* overlaps the proxy-side DMA of
    /// chunk *k* exactly as the local engine overlaps pread with DMA.
    ReadPages {
        /// Server-side descriptor.
        fd: HostFd,
        /// Pages to read, as `(offset, len)`.
        pages: Vec<(u64, u32)>,
    },
    /// Write gathered dirty-extent bytes: `(file offset, bytes)` pairs.
    /// An empty batch is legal and asks only for the file's current
    /// consistency generation (the local engine's no-dirty-bytes path).
    WritePages {
        /// Server-side descriptor.
        fd: HostFd,
        /// Extents to write, as `(offset, bytes)`.
        extents: Vec<(u64, Vec<u8>)>,
    },
    /// Flush the file to the server's stable storage.
    Fsync {
        /// Server-side descriptor.
        fd: HostFd,
    },
    /// Remove a file from the server's namespace.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// Truncate the file.
    Truncate {
        /// Server-side descriptor.
        fd: HostFd,
        /// New size in bytes.
        size: u64,
    },
    /// Query file metadata by path.
    Stat {
        /// Absolute path.
        path: String,
    },
}

/// A storage response on the wire — [`crate::rpc::RespOk`] with read
/// payloads carried as bytes, plus the server-side error channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireResponse {
    /// Result of [`WireRequest::Open`].
    Opened {
        /// Server-side descriptor.
        fd: HostFd,
        /// Inode on the server.
        ino: Ino,
        /// Size at open time.
        size: u64,
        /// Consistency generation at open time.
        generation: u64,
    },
    /// Bytes read per requested page, in request order (short at EOF,
    /// empty past it).
    Read {
        /// One byte vector per requested `(offset, len)` pair.
        pages: Vec<Vec<u8>>,
    },
    /// Bytes written plus the generation after the writes.
    Wrote {
        /// Bytes written.
        n: u64,
        /// Consistency generation after the writes.
        generation: u64,
    },
    /// Metadata from [`WireRequest::Stat`].
    Stat {
        /// Inode number.
        ino: Ino,
        /// Size in bytes.
        size: u64,
        /// Whether the file is writable.
        writable: bool,
        /// Consistency generation.
        generation: u64,
    },
    /// Operation with no payload completed.
    Done,
    /// The server's file system rejected the request.
    Err(FsError),
}

// ---------------------------------------------------------------------
// Primitive writers/readers. The reader half threads a cursor and
// returns `Truncated` the moment the buffer runs short.
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtoError::Corrupt("non-UTF-8 string"))
    }

    /// Every payload must be consumed exactly: trailing bytes mean the
    /// sender and receiver disagree about the layout.
    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::Corrupt("trailing bytes"))
        }
    }
}

/// Wrap `kind` + `payload` in the versioned frame header, carrying
/// `ctx` in the optional trace-context field when it is not
/// [`TraceCtx::NONE`].
fn frame(kind: u8, ctx: TraceCtx, payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + CTX_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    out.push(kind);
    out.push(if ctx.is_none() { 0 } else { FLAG_TRACE_CTX });
    put_u32(&mut out, payload.len() as u32);
    if !ctx.is_none() {
        put_u64(&mut out, ctx.trace);
        put_u64(&mut out, ctx.span);
    }
    out.extend_from_slice(&payload);
    out
}

/// The frame's length as charged to the link cost model. The optional
/// trace context is observability metadata and rides outside the model:
/// excluding it keeps virtual times and wire-byte counters bit-identical
/// with tracing on or off — the `trace_equiv` guarantee.
#[must_use]
pub fn charged_len(frame: &[u8]) -> usize {
    let traced = frame.len() >= HEADER_LEN
        && u16::from_le_bytes([frame[4], frame[5]]) == VERSION
        && frame[7] & FLAG_TRACE_CTX != 0;
    frame.len() - if traced { CTX_LEN } else { 0 }
}

/// Validate the header and return `(kind, ctx, payload)`. Version-1
/// frames decode with [`TraceCtx::NONE`].
fn open_frame(buf: &[u8]) -> Result<(u8, TraceCtx, &[u8]), ProtoError> {
    // Magic + version first: enough to route to the per-version layout.
    if buf.len() < 6 {
        return Err(ProtoError::Truncated);
    }
    if buf[..4] != MAGIC {
        return Err(ProtoError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let (ctx, len, body) = match version {
        1 => {
            if buf.len() < V1_HEADER_LEN {
                return Err(ProtoError::Truncated);
            }
            let len = u32::from_le_bytes([buf[7], buf[8], buf[9], buf[10]]) as usize;
            (TraceCtx::NONE, len, &buf[V1_HEADER_LEN..])
        }
        2 => {
            if buf.len() < HEADER_LEN {
                return Err(ProtoError::Truncated);
            }
            let flags = buf[7];
            if flags & !FLAG_TRACE_CTX != 0 {
                return Err(ProtoError::Corrupt("unknown frame flag bits"));
            }
            let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
            let mut body = &buf[HEADER_LEN..];
            let ctx = if flags & FLAG_TRACE_CTX != 0 {
                if body.len() < CTX_LEN {
                    return Err(ProtoError::Truncated);
                }
                let mut a = [0u8; 8];
                a.copy_from_slice(&body[..8]);
                let trace = u64::from_le_bytes(a);
                a.copy_from_slice(&body[8..CTX_LEN]);
                let span = u64::from_le_bytes(a);
                body = &body[CTX_LEN..];
                TraceCtx { trace, span }
            } else {
                TraceCtx::NONE
            };
            (ctx, len, body)
        }
        v => return Err(ProtoError::BadVersion(v)),
    };
    let kind = buf[6];
    if body.len() < len {
        return Err(ProtoError::Truncated);
    }
    if body.len() > len {
        return Err(ProtoError::Corrupt("frame longer than declared"));
    }
    Ok((kind, ctx, body))
}

// Request kinds.
const REQ_OPEN: u8 = 0;
const REQ_CLOSE: u8 = 1;
const REQ_READ: u8 = 2;
const REQ_WRITE: u8 = 3;
const REQ_FSYNC: u8 = 4;
const REQ_UNLINK: u8 = 5;
const REQ_TRUNCATE: u8 = 6;
const REQ_STAT: u8 = 7;

// Response kinds.
const RESP_OPENED: u8 = 0;
const RESP_READ: u8 = 1;
const RESP_WROTE: u8 = 2;
const RESP_STAT: u8 = 3;
const RESP_DONE: u8 = 4;
const RESP_ERR: u8 = 5;

// Error tags inside a RESP_ERR payload.
const ERR_NOT_FOUND: u8 = 0;
const ERR_ALREADY_EXISTS: u8 = 1;
const ERR_IS_A_DIRECTORY: u8 = 2;
const ERR_NOT_A_DIRECTORY: u8 = 3;
const ERR_DIRECTORY_NOT_EMPTY: u8 = 4;
const ERR_PERMISSION_DENIED: u8 = 5;
const ERR_BAD_DESCRIPTOR: u8 = 6;
const ERR_INVALID_PATH: u8 = 7;
const ERR_IMMUTABLE_FILE: u8 = 8;

const FLAG_WRITE: u8 = 1;
const FLAG_CREATE: u8 = 1 << 1;
const FLAG_TRUNCATE: u8 = 1 << 2;

/// Serialize one request into a framed byte vector with no trace
/// context — shorthand for [`encode_request_ctx`] with
/// [`TraceCtx::NONE`].
#[must_use]
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    encode_request_ctx(req, TraceCtx::NONE)
}

/// Serialize one request into a framed byte vector, carrying `ctx` in
/// the optional trace-context field when it is not [`TraceCtx::NONE`].
#[must_use]
pub fn encode_request_ctx(req: &WireRequest, ctx: TraceCtx) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match req {
        WireRequest::Open {
            path,
            write,
            create,
            truncate,
        } => {
            put_str(&mut p, path);
            let mut flags = 0u8;
            if *write {
                flags |= FLAG_WRITE;
            }
            if *create {
                flags |= FLAG_CREATE;
            }
            if *truncate {
                flags |= FLAG_TRUNCATE;
            }
            p.push(flags);
            REQ_OPEN
        }
        WireRequest::Close { fd } => {
            put_u64(&mut p, *fd);
            REQ_CLOSE
        }
        WireRequest::ReadPages { fd, pages } => {
            put_u64(&mut p, *fd);
            put_u32(&mut p, pages.len() as u32);
            for &(off, len) in pages {
                put_u64(&mut p, off);
                put_u32(&mut p, len);
            }
            REQ_READ
        }
        WireRequest::WritePages { fd, extents } => {
            put_u64(&mut p, *fd);
            put_u32(&mut p, extents.len() as u32);
            for (off, data) in extents {
                put_u64(&mut p, *off);
                put_bytes(&mut p, data);
            }
            REQ_WRITE
        }
        WireRequest::Fsync { fd } => {
            put_u64(&mut p, *fd);
            REQ_FSYNC
        }
        WireRequest::Unlink { path } => {
            put_str(&mut p, path);
            REQ_UNLINK
        }
        WireRequest::Truncate { fd, size } => {
            put_u64(&mut p, *fd);
            put_u64(&mut p, *size);
            REQ_TRUNCATE
        }
        WireRequest::Stat { path } => {
            put_str(&mut p, path);
            REQ_STAT
        }
    };
    frame(kind, ctx, p)
}

/// Decode one framed request, discarding any trace context — shorthand
/// for [`decode_request_ctx`].
///
/// # Errors
///
/// Rejects (never panics on) truncated buffers, wrong magic, version
/// mismatches, unknown kinds, and structurally corrupt payloads.
pub fn decode_request(buf: &[u8]) -> Result<WireRequest, ProtoError> {
    decode_request_ctx(buf).map(|(req, _)| req)
}

/// Decode one framed request along with its trace context
/// ([`TraceCtx::NONE`] for version-1 frames and untraced senders).
///
/// # Errors
///
/// Rejects (never panics on) the same malformations as
/// [`decode_request`].
pub fn decode_request_ctx(buf: &[u8]) -> Result<(WireRequest, TraceCtx), ProtoError> {
    let (kind, ctx, payload) = open_frame(buf)?;
    let mut r = Reader::new(payload);
    let req = match kind {
        REQ_OPEN => {
            let path = r.string()?;
            let flags = r.u8()?;
            if flags & !(FLAG_WRITE | FLAG_CREATE | FLAG_TRUNCATE) != 0 {
                return Err(ProtoError::Corrupt("unknown open flag bits"));
            }
            WireRequest::Open {
                path,
                write: flags & FLAG_WRITE != 0,
                create: flags & FLAG_CREATE != 0,
                truncate: flags & FLAG_TRUNCATE != 0,
            }
        }
        REQ_CLOSE => WireRequest::Close { fd: r.u64()? },
        REQ_READ => {
            let fd = r.u64()?;
            let n = r.u32()? as usize;
            let mut pages = Vec::new();
            for _ in 0..n {
                let off = r.u64()?;
                let len = r.u32()?;
                pages.push((off, len));
            }
            WireRequest::ReadPages { fd, pages }
        }
        REQ_WRITE => {
            let fd = r.u64()?;
            let n = r.u32()? as usize;
            let mut extents = Vec::new();
            for _ in 0..n {
                let off = r.u64()?;
                let data = r.bytes()?;
                extents.push((off, data));
            }
            WireRequest::WritePages { fd, extents }
        }
        REQ_FSYNC => WireRequest::Fsync { fd: r.u64()? },
        REQ_UNLINK => WireRequest::Unlink { path: r.string()? },
        REQ_TRUNCATE => WireRequest::Truncate {
            fd: r.u64()?,
            size: r.u64()?,
        },
        REQ_STAT => WireRequest::Stat { path: r.string()? },
        _ => return Err(ProtoError::Corrupt("unknown request kind")),
    };
    r.finish()?;
    Ok((req, ctx))
}

/// Serialize one response into a framed byte vector.
#[must_use]
pub fn encode_response(resp: &WireResponse) -> Vec<u8> {
    let mut p = Vec::new();
    let kind = match resp {
        WireResponse::Opened {
            fd,
            ino,
            size,
            generation,
        } => {
            put_u64(&mut p, *fd);
            put_u64(&mut p, *ino);
            put_u64(&mut p, *size);
            put_u64(&mut p, *generation);
            RESP_OPENED
        }
        WireResponse::Read { pages } => {
            put_u32(&mut p, pages.len() as u32);
            for data in pages {
                put_bytes(&mut p, data);
            }
            RESP_READ
        }
        WireResponse::Wrote { n, generation } => {
            put_u64(&mut p, *n);
            put_u64(&mut p, *generation);
            RESP_WROTE
        }
        WireResponse::Stat {
            ino,
            size,
            writable,
            generation,
        } => {
            put_u64(&mut p, *ino);
            put_u64(&mut p, *size);
            p.push(u8::from(*writable));
            put_u64(&mut p, *generation);
            RESP_STAT
        }
        WireResponse::Done => RESP_DONE,
        WireResponse::Err(e) => {
            encode_fs_error(&mut p, e);
            RESP_ERR
        }
    };
    // Responses never carry a context: the caller that decodes them is
    // already inside the span that shipped the request.
    frame(kind, TraceCtx::NONE, p)
}

/// Decode one framed response.
///
/// # Errors
///
/// Rejects (never panics on) the same malformations as
/// [`decode_request`].
pub fn decode_response(buf: &[u8]) -> Result<WireResponse, ProtoError> {
    let (kind, _ctx, payload) = open_frame(buf)?;
    let mut r = Reader::new(payload);
    let resp = match kind {
        RESP_OPENED => WireResponse::Opened {
            fd: r.u64()?,
            ino: r.u64()?,
            size: r.u64()?,
            generation: r.u64()?,
        },
        RESP_READ => {
            let n = r.u32()? as usize;
            let mut pages = Vec::new();
            for _ in 0..n {
                pages.push(r.bytes()?);
            }
            WireResponse::Read { pages }
        }
        RESP_WROTE => WireResponse::Wrote {
            n: r.u64()?,
            generation: r.u64()?,
        },
        RESP_STAT => {
            let ino = r.u64()?;
            let size = r.u64()?;
            let writable = match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(ProtoError::Corrupt("writable is not a bool")),
            };
            WireResponse::Stat {
                ino,
                size,
                writable,
                generation: r.u64()?,
            }
        }
        RESP_DONE => WireResponse::Done,
        RESP_ERR => WireResponse::Err(decode_fs_error(&mut r)?),
        _ => return Err(ProtoError::Corrupt("unknown response kind")),
    };
    r.finish()?;
    Ok(resp)
}

fn encode_fs_error(p: &mut Vec<u8>, e: &FsError) {
    match e {
        FsError::NotFound(s) => {
            p.push(ERR_NOT_FOUND);
            put_str(p, s);
        }
        FsError::AlreadyExists(s) => {
            p.push(ERR_ALREADY_EXISTS);
            put_str(p, s);
        }
        FsError::IsADirectory(s) => {
            p.push(ERR_IS_A_DIRECTORY);
            put_str(p, s);
        }
        FsError::NotADirectory(s) => {
            p.push(ERR_NOT_A_DIRECTORY);
            put_str(p, s);
        }
        FsError::DirectoryNotEmpty(s) => {
            p.push(ERR_DIRECTORY_NOT_EMPTY);
            put_str(p, s);
        }
        FsError::PermissionDenied(s) => {
            p.push(ERR_PERMISSION_DENIED);
            put_str(p, s);
        }
        FsError::BadDescriptor(fd) => {
            p.push(ERR_BAD_DESCRIPTOR);
            put_u64(p, *fd);
        }
        FsError::InvalidPath(s) => {
            p.push(ERR_INVALID_PATH);
            put_str(p, s);
        }
        FsError::ImmutableFile(s) => {
            p.push(ERR_IMMUTABLE_FILE);
            put_str(p, s);
        }
    }
}

fn decode_fs_error(r: &mut Reader<'_>) -> Result<FsError, ProtoError> {
    Ok(match r.u8()? {
        ERR_NOT_FOUND => FsError::NotFound(r.string()?),
        ERR_ALREADY_EXISTS => FsError::AlreadyExists(r.string()?),
        ERR_IS_A_DIRECTORY => FsError::IsADirectory(r.string()?),
        ERR_NOT_A_DIRECTORY => FsError::NotADirectory(r.string()?),
        ERR_DIRECTORY_NOT_EMPTY => FsError::DirectoryNotEmpty(r.string()?),
        ERR_PERMISSION_DENIED => FsError::PermissionDenied(r.string()?),
        ERR_BAD_DESCRIPTOR => FsError::BadDescriptor(r.u64()?),
        ERR_INVALID_PATH => FsError::InvalidPath(r.string()?),
        ERR_IMMUTABLE_FILE => FsError::ImmutableFile(r.string()?),
        _ => return Err(ProtoError::Corrupt("unknown error tag")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<WireRequest> {
        vec![
            WireRequest::Open {
                path: "/data/file.bin".into(),
                write: true,
                create: false,
                truncate: true,
            },
            WireRequest::Open {
                path: String::new(),
                write: false,
                create: true,
                truncate: false,
            },
            WireRequest::Close { fd: u64::MAX },
            WireRequest::ReadPages {
                fd: 3,
                pages: vec![(0, 65536), (65536, 65536), (1 << 40, 7)],
            },
            WireRequest::ReadPages {
                fd: 0,
                pages: vec![],
            },
            WireRequest::WritePages {
                fd: 9,
                extents: vec![(12, vec![1, 2, 3]), (1 << 33, vec![0u8; 64 << 10])],
            },
            WireRequest::WritePages {
                fd: 9,
                extents: vec![],
            },
            WireRequest::Fsync { fd: 1 },
            WireRequest::Unlink {
                path: "/gone".into(),
            },
            WireRequest::Truncate { fd: 4, size: 1234 },
            WireRequest::Stat {
                path: "/π/utf8 ✓".into(),
            },
        ]
    }

    fn all_responses() -> Vec<WireResponse> {
        vec![
            WireResponse::Opened {
                fd: 7,
                ino: 42,
                size: u64::MAX,
                generation: 3,
            },
            WireResponse::Read {
                pages: vec![vec![0u8; 64 << 10], vec![], vec![9, 9]],
            },
            WireResponse::Read { pages: vec![] },
            WireResponse::Wrote {
                n: 100,
                generation: 8,
            },
            WireResponse::Stat {
                ino: 1,
                size: 2,
                writable: true,
                generation: 0,
            },
            WireResponse::Done,
            WireResponse::Err(FsError::NotFound("/missing".into())),
            WireResponse::Err(FsError::AlreadyExists("/dup".into())),
            WireResponse::Err(FsError::IsADirectory("/d".into())),
            WireResponse::Err(FsError::NotADirectory("/f".into())),
            WireResponse::Err(FsError::DirectoryNotEmpty("/d".into())),
            WireResponse::Err(FsError::PermissionDenied("/ro".into())),
            WireResponse::Err(FsError::BadDescriptor(77)),
            WireResponse::Err(FsError::InvalidPath("rel".into())),
            WireResponse::Err(FsError::ImmutableFile("/syn".into())),
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let frame = encode_request(&req);
            assert_eq!(decode_request(&frame), Ok(req.clone()), "req {req:?}");
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in all_responses() {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame), Ok(resp.clone()), "resp {resp:?}");
        }
    }

    #[test]
    fn truncation_at_every_length_rejects_not_panics() {
        let frame = encode_request(&WireRequest::ReadPages {
            fd: 3,
            pages: vec![(0, 4096), (4096, 4096)],
        });
        for cut in 0..frame.len() {
            assert!(
                decode_request(&frame[..cut]).is_err(),
                "prefix of {cut} bytes must be rejected"
            );
        }
        let frame = encode_response(&WireResponse::Read {
            pages: vec![vec![1, 2, 3]],
        });
        for cut in 0..frame.len() {
            assert!(decode_response(&frame[..cut]).is_err());
        }
    }

    #[test]
    fn bad_magic_and_version_are_distinguished() {
        let mut frame = encode_request(&WireRequest::Fsync { fd: 1 });
        frame[0] = b'X';
        assert_eq!(decode_request(&frame), Err(ProtoError::BadMagic));
        let mut frame = encode_request(&WireRequest::Fsync { fd: 1 });
        frame[4] = 0xff;
        frame[5] = 0xff;
        assert_eq!(decode_request(&frame), Err(ProtoError::BadVersion(0xffff)));
    }

    #[test]
    fn unknown_kinds_flags_and_tags_reject() {
        let mut frame = encode_request(&WireRequest::Fsync { fd: 1 });
        frame[6] = 200;
        assert!(matches!(
            decode_request(&frame),
            Err(ProtoError::Corrupt(_))
        ));
        let mut frame = encode_response(&WireResponse::Done);
        frame[6] = 200;
        assert!(matches!(
            decode_response(&frame),
            Err(ProtoError::Corrupt(_))
        ));
        // Out-of-spec open flag bits (last payload byte).
        let mut frame = encode_request(&WireRequest::Open {
            path: "/f".into(),
            write: false,
            create: false,
            truncate: false,
        });
        let last = frame.len() - 1;
        frame[last] = 0x80;
        assert!(matches!(
            decode_request(&frame),
            Err(ProtoError::Corrupt(_))
        ));
        // Unknown error tag.
        let mut frame = encode_response(&WireResponse::Err(FsError::BadDescriptor(1)));
        frame[HEADER_LEN] = 99;
        assert!(matches!(
            decode_response(&frame),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn trailing_and_oversized_frames_reject() {
        let mut frame = encode_request(&WireRequest::Close { fd: 1 });
        frame.push(0);
        assert!(matches!(
            decode_request(&frame),
            Err(ProtoError::Corrupt(_))
        ));
        // Declared payload length longer than the buffer (offset 8 is
        // the low byte of the v2 length field).
        let mut frame = encode_request(&WireRequest::Close { fd: 1 });
        frame[8] = 0xff;
        assert_eq!(decode_request(&frame), Err(ProtoError::Truncated));
        // Out-of-spec frame flag bits reject.
        let mut frame = encode_request(&WireRequest::Close { fd: 1 });
        frame[7] = 0x80;
        assert_eq!(
            decode_request(&frame),
            Err(ProtoError::Corrupt("unknown frame flag bits"))
        );
    }

    #[test]
    fn non_utf8_paths_reject() {
        let mut frame = encode_request(&WireRequest::Unlink { path: "/ab".into() });
        // Payload: u32 len 3, then "/ab" — stomp a continuation byte.
        frame[HEADER_LEN + 4 + 1] = 0xff;
        assert_eq!(
            decode_request(&frame),
            Err(ProtoError::Corrupt("non-UTF-8 string"))
        );
    }

    #[test]
    fn empty_and_garbage_buffers_reject() {
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated));
        assert_eq!(decode_response(&[0u8; 5]), Err(ProtoError::Truncated));
        assert_eq!(
            decode_request(&[0xaa; 64]),
            Err(ProtoError::BadMagic),
            "garbage never panics"
        );
    }

    /// Re-wrap a ctx-free v2 frame in the 11-byte version-1 header, as
    /// a v1 sender would have emitted it.
    fn reframe_v1(frame_v2: &[u8]) -> Vec<u8> {
        assert_eq!(frame_v2[7], 0, "only ctx-free frames have a v1 shape");
        let payload = &frame_v2[HEADER_LEN..];
        let mut out = Vec::with_capacity(V1_HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        put_u16(&mut out, 1);
        out.push(frame_v2[6]);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn trace_ctx_rides_the_frame_and_round_trips() {
        let req = WireRequest::ReadPages {
            fd: 3,
            pages: vec![(0, 4096)],
        };
        let ctx = TraceCtx { trace: 7, span: 9 };
        let frame = encode_request_ctx(&req, ctx);
        assert_eq!(frame[7], FLAG_TRACE_CTX);
        assert_eq!(decode_request_ctx(&frame), Ok((req.clone(), ctx)));
        // The ctx-blind decoder still reads the same request.
        assert_eq!(decode_request(&frame), Ok(req.clone()));
        // An untraced sender emits no ctx field at all.
        let bare = encode_request(&req);
        assert_eq!(bare.len() + CTX_LEN, frame.len());
        assert_eq!(decode_request_ctx(&bare), Ok((req, TraceCtx::NONE)));
    }

    #[test]
    fn version_1_frames_still_decode_without_a_ctx() {
        for req in all_requests() {
            let v1 = reframe_v1(&encode_request(&req));
            assert_eq!(decode_request_ctx(&v1), Ok((req.clone(), TraceCtx::NONE)));
        }
        for resp in all_responses() {
            let v1 = reframe_v1(&encode_response(&resp));
            assert_eq!(decode_response(&v1), Ok(resp.clone()));
        }
    }

    // Property coverage of the new frame field: arbitrary contexts
    // round-trip, every truncation rejects, and the v1 reframing of any
    // request decodes cleanly with no ctx.
    use proptest::prelude::*;

    fn any_request() -> impl Strategy<Value = WireRequest> {
        prop_oneof![
            (0usize..12, any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
                |(n, write, create, truncate)| WireRequest::Open {
                    path: format!("/{}", "a".repeat(n)),
                    write,
                    create,
                    truncate,
                }
            ),
            any::<u64>().prop_map(|fd| WireRequest::Close { fd }),
            (
                any::<u64>(),
                proptest::collection::vec((any::<u64>(), 0u32..1 << 20), 0..8)
            )
                .prop_map(|(fd, pages)| WireRequest::ReadPages { fd, pages }),
            (
                any::<u64>(),
                proptest::collection::vec(
                    (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
                    0..4
                )
            )
                .prop_map(|(fd, extents)| WireRequest::WritePages { fd, extents }),
            any::<u64>().prop_map(|fd| WireRequest::Fsync { fd }),
            (any::<u64>(), any::<u64>()).prop_map(|(fd, size)| WireRequest::Truncate { fd, size }),
        ]
    }

    fn any_ctx() -> impl Strategy<Value = TraceCtx> {
        // `trace | 1` keeps the ctx live: a zero trace id means "no
        // context" and would legitimately encode to a flag-less frame.
        (any::<u64>(), any::<u64>()).prop_map(|(trace, span)| TraceCtx {
            trace: trace | 1,
            span,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_ctx_frames_round_trip(req in any_request(), ctx in any_ctx()) {
            let frame = encode_request_ctx(&req, ctx);
            prop_assert_eq!(decode_request_ctx(&frame), Ok((req, ctx)));
        }

        #[test]
        fn prop_every_truncation_rejects(req in any_request(), ctx in any_ctx()) {
            let frame = encode_request_ctx(&req, ctx);
            for cut in 0..frame.len() {
                prop_assert!(decode_request_ctx(&frame[..cut]).is_err());
            }
        }

        #[test]
        fn prop_v1_frames_decode_with_no_ctx(req in any_request()) {
            let v1 = reframe_v1(&encode_request(&req));
            prop_assert_eq!(decode_request_ctx(&v1), Ok((req, TraceCtx::NONE)));
        }
    }
}
