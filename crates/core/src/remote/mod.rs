//! The cross-host storage tier: proxy/server split over a wire format.
//!
//! The paper's design puts a narrow RPC boundary between GPU file
//! clients and the host daemon (§4.3); this module extends that boundary
//! across hosts. The single-host daemon owned its `HostFs` directly —
//! here that ownership moves behind an explicit, versioned,
//! length-prefixed wire format:
//!
//! * [`proto`] — the hand-rolled frame encoding of the request/response
//!   surface (no serde; rejected-never-panicked decoding).
//! * [`StorageServer`] — sole owner of the shared [`hostfs::HostFs`] and
//!   its close-to-open consistency registry; serves decoded frames
//!   through the same operation sequences as `daemon/handlers.rs`.
//! * [`HostProxy`] — the per-host gateway: serializes requests, moves
//!   frames over a simulated network link (per-direction
//!   [`simtime::BandwidthResource`] + fixed RTT, the PCIe model's
//!   shape, calibrated by [`simtime::Timings::net_rtt_ns`] /
//!   [`simtime::Timings::net_mb_s`]), and keeps the [`HostPageCache`] so
//!   repeat faults across a host's GPUs never cross the network.
//! * [`client`](self) — the proxy-backed daemon serve path (crate
//!   internal), mirroring the local handlers + pipelined I/O engine
//!   line for line with frames in place of file-system calls.
//!
//! Under [`simtime::Timings::without_net`] with the host cache disabled
//! the whole tier is virtually-time-transparent: a proxy-backed fleet
//! reproduces the local fleet's BENCH_scale numbers to four digits.

pub(crate) mod cache;
pub(crate) mod client;
pub mod proto;
pub(crate) mod proxy;
pub(crate) mod server;

pub use cache::{HostCacheStats, HostPageCache};
pub use proto::{ProtoError, WireRequest, WireResponse};
pub use proxy::{HostProxy, WireStats};
pub use server::{ServerStats, StorageServer};
