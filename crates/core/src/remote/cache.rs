//! The host-local page cache of the cross-host storage tier.
//!
//! Once the file system lives behind a network link, every repeat fault
//! from any GPU on a host would cross that link — the cross-host
//! analogue of the paper's motivating observation that every GPU fault
//! crossing PCIe is what the GPU-side buffer cache exists to absorb. The
//! proxy therefore keeps a read-through page cache in host memory,
//! built from the same machinery idioms as the GPU-side cache in
//! [`crate::cache`]: a sharded map (the `table.rs` pattern — fixed-seed
//! SipHash, one mutex per shard so concurrent GPUs on one host don't
//! serialize on a single lock) with per-shard FIFO eviction under a
//! page-count budget.
//!
//! Consistency spans hosts through the same generation protocol the GPU
//! caches use: every entry is tagged with the consistency generation its
//! descriptor was opened (or last written) at, and a lookup against a
//! newer generation drops the entry *at that moment* — lazy
//! invalidation, exactly the paper's §4.4 contract. Nothing is
//! broadcast on writes; a host that never reopens keeps serving its
//! epoch's bytes, which close-to-open permits.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

use hostfs::Ino;
use parking_lot::Mutex;
use simtime::Counter;

/// Activity counters of one host's page cache. All exact — unit tests
/// assert them hit for hit.
#[derive(Debug, Default)]
pub struct HostCacheStats {
    /// Lookups served from host memory (no wire crossing).
    pub hits: Counter,
    /// Lookups that had to go to the storage server.
    pub misses: Counter,
    /// Entries dropped at lookup time because their generation lagged
    /// the descriptor's — the lazy cross-host invalidations of §4.4.
    pub lazy_invalidations: Counter,
    /// Pages inserted by read-through fills.
    pub insertions: Counter,
    /// Pages evicted by the FIFO budget.
    pub evictions: Counter,
}

impl HostCacheStats {
    /// Every counter as a `(name, value)` row, mirroring
    /// [`crate::DaemonStats::snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits.get()),
            ("misses", self.misses.get()),
            ("lazy_invalidations", self.lazy_invalidations.get()),
            ("insertions", self.insertions.get()),
            ("evictions", self.evictions.get()),
        ]
    }
}

#[derive(Debug)]
struct Entry {
    data: Vec<u8>,
    generation: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(Ino, u64), Entry>,
    fifo: VecDeque<(Ino, u64)>,
}

/// A sharded, generation-checked, FIFO-bounded page cache keyed by
/// `(ino, page offset)`. Capacity `0` disables the cache entirely: every
/// lookup misses silently and inserts are dropped, which is what the
/// zero-net BENCH_scale compat configuration runs with.
#[derive(Debug)]
pub struct HostPageCache {
    shards: Box<[Mutex<Shard>]>,
    per_shard_cap: usize,
    stats: HostCacheStats,
}

impl HostPageCache {
    /// A cache holding at most `capacity_pages` entries spread over
    /// `shards` locks (both clamped to ≥ 1 internally; capacity `0`
    /// keeps its meaning as "disabled").
    #[must_use]
    pub fn new(capacity_pages: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_cap = if capacity_pages == 0 {
            0
        } else {
            capacity_pages.div_ceil(shards).max(1)
        };
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap,
            stats: HostCacheStats::default(),
        }
    }

    /// Whether this cache stores anything at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.per_shard_cap > 0
    }

    /// Cache activity counters.
    #[must_use]
    pub fn stats(&self) -> &HostCacheStats {
        &self.stats
    }

    /// Entries currently cached (for tests and reporting).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_of(&self, ino: Ino, offset: u64) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        (ino, offset).hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Look a page up for a descriptor opened at `generation`. An entry
    /// at the wrong generation is removed *here* — lazily, at the
    /// moment staleness is observed, never when the writer published —
    /// and the lookup reports a miss. An entry at the right generation
    /// but shorter than `min_len` also misses (it was filled by a
    /// smaller read and cannot prove the tail is EOF); it stays cached
    /// and the wire fill replaces it with the longer bytes.
    #[must_use]
    pub fn lookup(
        &self,
        ino: Ino,
        offset: u64,
        generation: u64,
        min_len: usize,
    ) -> Option<Vec<u8>> {
        if !self.enabled() {
            return None;
        }
        let mut shard = self.shard_of(ino, offset).lock();
        match shard.map.get(&(ino, offset)) {
            Some(e) if e.generation == generation && e.data.len() >= min_len => {
                let data = e.data.clone();
                drop(shard);
                self.stats.hits.incr();
                Some(data)
            }
            Some(e) if e.generation != generation => {
                shard.map.remove(&(ino, offset));
                shard.fifo.retain(|k| *k != (ino, offset));
                drop(shard);
                self.stats.lazy_invalidations.incr();
                self.stats.misses.incr();
                None
            }
            _ => {
                // Absent, or current-generation but too short to serve.
                drop(shard);
                self.stats.misses.incr();
                None
            }
        }
    }

    /// Read-through fill: remember `data` for `(ino, offset)` at
    /// `generation`, evicting FIFO-oldest entries of the shard when the
    /// budget is exceeded. Empty pages (reads past EOF) are not worth a
    /// frame and are dropped.
    pub fn insert(&self, ino: Ino, offset: u64, generation: u64, data: Vec<u8>) {
        if !self.enabled() || data.is_empty() {
            return;
        }
        let mut shard = self.shard_of(ino, offset).lock();
        let key = (ino, offset);
        let fresh = shard.map.insert(key, Entry { data, generation }).is_none();
        if fresh {
            shard.fifo.push_back(key);
            self.stats.insertions.incr();
            while shard.fifo.len() > self.per_shard_cap {
                if let Some(old) = shard.fifo.pop_front() {
                    shard.map.remove(&old);
                    self.stats.evictions.incr();
                }
            }
        }
    }

    /// Drop every cached page of `ino` overlapping the byte range
    /// `[start, end)` — the proxy's own write-back path calls this so a
    /// host always reads its own writes, independent of generations.
    pub fn invalidate_overlapping(&self, ino: Ino, start: u64, end: u64) {
        if !self.enabled() {
            return;
        }
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            let doomed: Vec<(Ino, u64)> = shard
                .map
                .iter()
                .filter(|((i, off), e)| {
                    *i == ino && *off < end && off.saturating_add(e.data.len() as u64) > start
                })
                .map(|(k, _)| *k)
                .collect();
            for key in doomed {
                shard.map.remove(&key);
                shard.fifo.retain(|k| *k != key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_fill_are_counted_exactly() {
        let c = HostPageCache::new(8, 2);
        assert!(c.enabled());
        assert_eq!(c.lookup(1, 0, 0, 16), None);
        c.insert(1, 0, 0, vec![7; 16]);
        assert_eq!(c.lookup(1, 0, 0, 16), Some(vec![7; 16]));
        assert_eq!(c.lookup(1, 64, 0, 16), None);
        let s = c.stats();
        assert_eq!(s.hits.get(), 1);
        assert_eq!(s.misses.get(), 2);
        assert_eq!(s.insertions.get(), 1);
        assert_eq!(s.evictions.get(), 0);
        assert_eq!(s.lazy_invalidations.get(), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn generation_mismatch_invalidates_lazily_at_lookup() {
        let c = HostPageCache::new(8, 1);
        c.insert(1, 0, 3, vec![1; 8]);
        // The writer published generation 4 — nothing happens to the
        // entry until someone looks with the new generation.
        assert_eq!(c.len(), 1, "no eager invalidation");
        assert_eq!(c.lookup(1, 0, 4, 8), None, "stale entry misses");
        assert_eq!(c.stats().lazy_invalidations.get(), 1);
        assert_eq!(c.len(), 0, "dropped at lookup time");
        // A descriptor still on the old generation keeps hitting its
        // epoch's bytes — close-to-open permits that.
        c.insert(2, 0, 3, vec![2; 8]);
        assert_eq!(c.lookup(2, 0, 3, 8), Some(vec![2; 8]));
    }

    #[test]
    fn fifo_budget_evicts_oldest_per_shard() {
        let c = HostPageCache::new(2, 1);
        c.insert(1, 0, 0, vec![1; 4]);
        c.insert(1, 64, 0, vec![2; 4]);
        c.insert(1, 128, 0, vec![3; 4]);
        assert_eq!(c.stats().evictions.get(), 1);
        assert_eq!(c.lookup(1, 0, 0, 4), None, "oldest page evicted");
        assert_eq!(c.lookup(1, 64, 0, 4), Some(vec![2; 4]));
        assert_eq!(c.lookup(1, 128, 0, 4), Some(vec![3; 4]));
    }

    #[test]
    fn reinsert_updates_in_place_without_double_billing() {
        let c = HostPageCache::new(2, 1);
        c.insert(1, 0, 0, vec![1; 4]);
        c.insert(1, 0, 1, vec![9; 4]);
        assert_eq!(c.stats().insertions.get(), 1, "update is not a new fill");
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(1, 0, 1, 4), Some(vec![9; 4]));
    }

    #[test]
    fn write_invalidation_hits_only_overlapping_pages() {
        let c = HostPageCache::new(16, 4);
        for i in 0..4u64 {
            c.insert(5, i * 64, 0, vec![i as u8; 64]);
        }
        c.insert(6, 0, 0, vec![9; 64]);
        // An extent covering bytes [100, 140) overlaps pages at 64 and
        // 128, not 0 or 192, and never another ino.
        c.invalidate_overlapping(5, 100, 140);
        assert_eq!(c.lookup(5, 0, 0, 64), Some(vec![0; 64]));
        assert_eq!(c.lookup(5, 64, 0, 64), None);
        assert_eq!(c.lookup(5, 128, 0, 64), None);
        assert_eq!(c.lookup(5, 192, 0, 64), Some(vec![3; 64]));
        assert_eq!(c.lookup(6, 0, 0, 64), Some(vec![9; 64]));
    }

    #[test]
    fn capacity_zero_disables_everything_silently() {
        let c = HostPageCache::new(0, 8);
        assert!(!c.enabled());
        c.insert(1, 0, 0, vec![1; 4]);
        assert_eq!(c.lookup(1, 0, 0, 4), None);
        assert!(c.is_empty());
        let s = c.stats();
        // Disabled caches count nothing: the zero-net compat bench must
        // see a spotless sheet.
        assert_eq!(s.hits.get() + s.misses.get() + s.insertions.get(), 0);
    }

    #[test]
    fn empty_pages_are_not_cached() {
        let c = HostPageCache::new(8, 1);
        c.insert(1, 0, 0, Vec::new());
        assert!(c.is_empty());
        assert_eq!(c.stats().insertions.get(), 0);
    }
}
