//! The cross-host storage server: sole owner of the shared file system.
//!
//! In the single-host design the daemon worker calls [`hostfs::HostFs`]
//! directly. The cross-host split moves that ownership here: a
//! [`StorageServer`] holds the one `HostFs` (and with it the
//! close-to-open consistency registry every host's GPUs register
//! against) and serves *decoded wire frames* — the same operation
//! sequences, against the same cost model, as the local
//! `daemon/handlers.rs` dispatch, so a proxy-backed daemon over a free
//! network link times bit-for-bit like a local one.
//!
//! The server is passive: it has no threads of its own. Each
//! [`StorageServer::serve_frame`] call runs on the caller's (proxy's)
//! OS thread with its own virtual [`Clock`] started at the frame's
//! arrival time; concurrency across hosts is arbitrated by the shared
//! `simtime` resources under the file system (disk, page cache), exactly
//! as the local daemon's worker pool is.

use std::sync::Arc;

use hostfs::{HostFs, OpenFlags};
use simtime::{Clock, Counter, Nanos, Timings};

use super::proto::{self, ProtoError, WireRequest, WireResponse};

/// The trace-span name of one served wire request.
fn server_span_name(req: &WireRequest) -> &'static str {
    match req {
        WireRequest::Open { .. } => "server:Open",
        WireRequest::Close { .. } => "server:Close",
        WireRequest::ReadPages { .. } => "server:ReadPages",
        WireRequest::WritePages { .. } => "server:WritePages",
        WireRequest::Fsync { .. } => "server:Fsync",
        WireRequest::Unlink { .. } => "server:Unlink",
        WireRequest::Truncate { .. } => "server:Truncate",
        WireRequest::Stat { .. } => "server:Stat",
    }
}

/// Activity counters of one storage server, aggregated over every host
/// link it serves.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Wire frames served (requests decoded and answered).
    pub frames: Counter,
    /// Payload bytes read from files on behalf of `ReadPages` frames.
    pub bytes_read: Counter,
    /// Payload bytes written to files on behalf of `WritePages` frames.
    pub bytes_written: Counter,
    /// Frames answered with a file-system error.
    pub errors: Counter,
}

impl ServerStats {
    /// Every counter as a `(name, value)` row, mirroring
    /// [`crate::DaemonStats::snapshot`].
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("frames", self.frames.get()),
            ("bytes_read", self.bytes_read.get()),
            ("bytes_written", self.bytes_written.get()),
            ("errors", self.errors.get()),
        ]
    }
}

/// The storage tier of a [`crate::cluster::HostFleet`]: owns the shared
/// [`HostFs`] + consistency registry and answers wire frames from the
/// per-host [`super::HostProxy`]s.
#[derive(Debug)]
pub struct StorageServer {
    fs: Arc<HostFs>,
    stats: ServerStats,
}

impl StorageServer {
    /// Wrap `fs` as the fleet's storage tier.
    #[must_use]
    pub fn new(fs: Arc<HostFs>) -> Self {
        Self {
            fs,
            stats: ServerStats::default(),
        }
    }

    /// The served file system — for seeding, auditing, and observability
    /// (host proxies never touch it; they only speak frames).
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        &self.fs
    }

    /// The served platform's timing calibration (proxies model their
    /// local work — cache copies, DMA submits — from the same sheet).
    #[must_use]
    pub fn timings(&self) -> &Timings {
        self.fs.timings()
    }

    /// Activity counters of this server.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Decode and serve one request frame arriving at virtual time
    /// `now`; returns the encoded response frame and the virtual time
    /// the response is ready to go back on the wire.
    ///
    /// File-system failures ride the wire as [`WireResponse::Err`]; the
    /// `Err` branch here is reserved for frames this server cannot even
    /// parse (truncated, corrupt, or wrong wire version) — rejected,
    /// never panicked on.
    ///
    /// # Errors
    ///
    /// Returns the [`ProtoError`] describing why the frame failed to
    /// decode.
    pub fn serve_frame(&self, frame: &[u8], now: Nanos) -> Result<(Vec<u8>, Nanos), ProtoError> {
        let (req, ctx) = proto::decode_request_ctx(frame)?;
        self.stats.frames.incr();
        // Re-parent under the wire ctx so the server's span hangs off
        // the host-side `net_roundtrip` that shipped the frame.
        let _remote = obs::adopt_remote(ctx);
        let sp = obs::span(server_span_name(&req));
        let mut clock = Clock::starting_at(now);
        let resp = self.serve(&req, &mut clock);
        sp.finish(now, clock.now());
        if matches!(resp, WireResponse::Err(_)) {
            self.stats.errors.incr();
        }
        Ok((proto::encode_response(&resp), clock.now()))
    }

    /// Serve one decoded request against the file system, advancing
    /// `clock` through the same wait sequence the local
    /// `daemon/handlers.rs` dispatch would.
    fn serve(&self, req: &WireRequest, clock: &mut Clock) -> WireResponse {
        let fs = &self.fs;
        let now = clock.now();
        match req {
            WireRequest::Open {
                path,
                write,
                create,
                truncate,
            } => {
                let flags = OpenFlags {
                    read: true,
                    write: *write,
                    create: *create,
                    truncate: *truncate,
                };
                match fs
                    .open(path, flags, now)
                    .and_then(|(fd, t)| fs.fstat(fd).map(|meta| (fd, t, meta)))
                {
                    Ok((fd, t, meta)) => {
                        clock.wait_until(t);
                        WireResponse::Opened {
                            fd,
                            ino: meta.ino,
                            size: meta.size,
                            generation: fs.consistency().generation(meta.ino),
                        }
                    }
                    Err(e) => WireResponse::Err(e),
                }
            }
            WireRequest::Close { fd } => match fs.close(*fd) {
                Ok(()) => WireResponse::Done,
                Err(e) => WireResponse::Err(e),
            },
            WireRequest::ReadPages { fd, pages } => {
                let mut out = Vec::with_capacity(pages.len());
                for &(offset, len) in pages {
                    let mut buf = vec![0u8; len as usize];
                    match fs.pread(*fd, offset, &mut buf, clock.now()) {
                        Ok((n, t)) => {
                            clock.wait_until(t);
                            buf.truncate(n);
                            self.stats.bytes_read.add(n as u64);
                            out.push(buf);
                        }
                        Err(e) => return WireResponse::Err(e),
                    }
                }
                WireResponse::Read { pages: out }
            }
            WireRequest::WritePages { fd, extents } => {
                // Mirrors the local engine's bookkeeping: the ino probe
                // and generation reads cost nothing, and an empty batch
                // only reports the current generation.
                let ino = fs.fstat(*fd).map(|m| m.ino).unwrap_or_default();
                if extents.is_empty() {
                    return WireResponse::Wrote {
                        n: 0,
                        generation: fs.consistency().generation(ino),
                    };
                }
                let mut written = 0u64;
                for (offset, data) in extents {
                    match fs.pwrite(*fd, *offset, data, clock.now()) {
                        Ok((n, t)) => {
                            clock.wait_until(t);
                            written += n as u64;
                        }
                        Err(e) => return WireResponse::Err(e),
                    }
                }
                self.stats.bytes_written.add(written);
                WireResponse::Wrote {
                    n: written,
                    generation: fs.consistency().generation(ino),
                }
            }
            WireRequest::Fsync { fd } => match fs.fsync(*fd, now) {
                Ok(t) => {
                    clock.wait_until(t);
                    WireResponse::Done
                }
                Err(e) => WireResponse::Err(e),
            },
            WireRequest::Unlink { path } => match fs.unlink(path, now) {
                Ok(t) => {
                    clock.wait_until(t);
                    WireResponse::Done
                }
                Err(e) => WireResponse::Err(e),
            },
            WireRequest::Truncate { fd, size } => match fs.ftruncate(*fd, *size, now) {
                Ok(t) => {
                    clock.wait_until(t);
                    WireResponse::Done
                }
                Err(e) => WireResponse::Err(e),
            },
            WireRequest::Stat { path } => match fs.stat(path) {
                Ok(m) => WireResponse::Stat {
                    ino: m.ino,
                    size: m.size,
                    writable: m.writable,
                    generation: fs.consistency().generation(m.ino),
                },
                Err(e) => WireResponse::Err(e),
            },
        }
    }
}

#[allow(clippy::expect_used)]
#[cfg(test)]
mod tests {
    use super::*;
    use hostfs::{FsError, HostFsConfig};

    fn server() -> StorageServer {
        StorageServer::new(Arc::new(HostFs::new(HostFsConfig::default())))
    }

    fn ask(s: &StorageServer, req: &WireRequest, now: Nanos) -> (WireResponse, Nanos) {
        let (frame, end) = s
            .serve_frame(&proto::encode_request(req), now)
            .expect("well-formed frame");
        (
            proto::decode_response(&frame).expect("well-formed response"),
            end,
        )
    }

    #[test]
    fn open_read_write_close_over_frames() {
        let s = server();
        s.fs().create("/f", b"hello wire").unwrap();
        let (resp, t_open) = ask(
            &s,
            &WireRequest::Open {
                path: "/f".into(),
                write: true,
                create: false,
                truncate: false,
            },
            1000,
        );
        let WireResponse::Opened { fd, size, .. } = resp else {
            panic!("expected Opened, got {resp:?}");
        };
        assert_eq!(size, 10);
        assert!(t_open > 1000, "open charges host time from arrival");

        let (resp, t_read) = ask(
            &s,
            &WireRequest::ReadPages {
                fd,
                pages: vec![(0, 5), (5, 64)],
            },
            t_open,
        );
        let WireResponse::Read { pages } = resp else {
            panic!("expected Read, got {resp:?}");
        };
        assert_eq!(pages, vec![b"hello".to_vec(), b" wire".to_vec()]);
        assert!(t_read > t_open);
        assert_eq!(s.stats().bytes_read.get(), 10);

        let (resp, _) = ask(
            &s,
            &WireRequest::WritePages {
                fd,
                extents: vec![(0, b"HELLO".to_vec())],
            },
            t_read,
        );
        assert!(matches!(resp, WireResponse::Wrote { n: 5, .. }));
        assert_eq!(s.stats().bytes_written.get(), 5);
        let (data, _) = s.fs().read_whole("/f", 0).unwrap();
        assert_eq!(&data, b"HELLO wire");

        let (resp, _) = ask(&s, &WireRequest::Close { fd }, t_read);
        assert!(matches!(resp, WireResponse::Done));
        assert_eq!(s.stats().frames.get(), 4);
        assert_eq!(s.stats().errors.get(), 0);
    }

    #[test]
    fn empty_write_batch_reports_generation_without_cost() {
        let s = server();
        s.fs().create("/g", &[0u8; 16]).unwrap();
        let (resp, _) = ask(
            &s,
            &WireRequest::Open {
                path: "/g".into(),
                write: true,
                create: false,
                truncate: false,
            },
            0,
        );
        let WireResponse::Opened { fd, generation, .. } = resp else {
            panic!()
        };
        let (resp, end) = ask(
            &s,
            &WireRequest::WritePages {
                fd,
                extents: vec![],
            },
            5000,
        );
        assert_eq!(
            resp,
            WireResponse::Wrote { n: 0, generation },
            "empty batch only reads the generation"
        );
        assert_eq!(end, 5000, "and charges no virtual time");
    }

    #[test]
    fn fs_errors_ride_the_wire_as_responses() {
        let s = server();
        let (resp, _) = ask(
            &s,
            &WireRequest::Stat {
                path: "/missing".into(),
            },
            0,
        );
        assert!(matches!(resp, WireResponse::Err(FsError::NotFound(_))));
        let (resp, _) = ask(&s, &WireRequest::Fsync { fd: 999 }, 0);
        assert!(matches!(
            resp,
            WireResponse::Err(FsError::BadDescriptor(999))
        ));
        assert_eq!(s.stats().errors.get(), 2);
    }

    #[test]
    fn malformed_frames_are_rejected_not_served() {
        let s = server();
        assert_eq!(s.serve_frame(&[], 0), Err(ProtoError::Truncated));
        assert_eq!(s.serve_frame(&[0xaa; 32], 0), Err(ProtoError::BadMagic));
        let mut frame = proto::encode_request(&WireRequest::Fsync { fd: 1 });
        frame[4] = 9;
        assert_eq!(s.serve_frame(&frame, 0), Err(ProtoError::BadVersion(9)));
        assert_eq!(s.stats().frames.get(), 0, "rejected frames never count");
    }

    #[test]
    fn server_times_match_the_local_handler_sequence() {
        // The same op sequence served locally (fs calls + a clock) and
        // over frames must land on identical virtual times — the
        // foundation of the zero-net BENCH_scale compat claim.
        let s = server();
        s.fs().create("/t", &vec![7u8; 256 << 10]).unwrap();
        // Warm the host page cache first so both runs see the same
        // cache state, then zero the device clocks before each.
        s.fs().read_whole("/t", 0).unwrap();
        s.fs().reset_device_time();
        let local = {
            let fs = s.fs();
            let mut clock = Clock::starting_at(100);
            let (fd, t) = fs
                .open(
                    "/t",
                    OpenFlags {
                        read: true,
                        write: false,
                        create: false,
                        truncate: false,
                    },
                    clock.now(),
                )
                .unwrap();
            clock.wait_until(t);
            let t_open = clock.now();
            let mut buf = vec![0u8; 64 << 10];
            for i in 0..4u64 {
                let (_, t) = fs.pread(fd, i * (64 << 10), &mut buf, clock.now()).unwrap();
                clock.wait_until(t);
            }
            fs.close(fd).unwrap();
            (t_open, clock.now())
        };
        s.fs().reset_device_time();
        let (resp, t_open) = ask(
            &s,
            &WireRequest::Open {
                path: "/t".into(),
                write: false,
                create: false,
                truncate: false,
            },
            100,
        );
        let WireResponse::Opened { fd, .. } = resp else {
            panic!()
        };
        let pages: Vec<(u64, u32)> = (0..4).map(|i| (i * (64 << 10), 64 << 10)).collect();
        let (_, t_read) = ask(&s, &WireRequest::ReadPages { fd, pages }, t_open);
        assert_eq!((t_open, t_read), local, "frame serving is time-identical");
    }
}
