//! The one sanctioned blocking-backoff primitive.
//!
//! Spin loops elsewhere in the crate may `yield_now` freely, but
//! real-time sleeps are concentrated here so the `xtask lint` `sleep`
//! rule has a single allowlisted home: an ad-hoc `thread::sleep` hides
//! ordering bugs (the test suite can't provoke the interleaving it
//! papers over) and skews the virtual clock's real-time envelope.

use std::time::Duration;

/// How long one sleep round lasts once a retry loop has exhausted its
/// spin budget. Short enough that a genuinely wedged loop still reaches
/// its give-up bound in ~0.2 s, long enough to get the OS scheduler to
/// run whichever thread holds the resource.
const SLEEP_QUANTUM: Duration = Duration::from_micros(50);

/// Back off inside a zero-progress retry loop: busy-yield for the first
/// `spin_rounds` fruitless rounds, then fall back to short sleeps.
///
/// `fruitless` is the caller's count of consecutive rounds that made no
/// progress (reset it to zero whenever the loop achieves anything).
pub(crate) fn spin_then_sleep(fruitless: usize, spin_rounds: usize) {
    if fruitless > spin_rounds {
        std::thread::sleep(SLEEP_QUANTUM);
    } else {
        std::thread::yield_now();
    }
}
