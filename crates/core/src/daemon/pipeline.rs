//! The daemon's staged, chunked I/O engine (paper §4.3 / Figure 5:
//! "overlap file accesses on the CPU with the GPU-CPU data transfers").
//!
//! Both bulk-data RPCs move a *batch* of pages in one round-trip and one
//! scatter-gather DMA transaction. The serialized engine of the original
//! prototype ran the two halves back to back — `ReadPages`: pread every
//! page, then one DMA after the last pread; `WritePages`: one D2H gather,
//! then every `pwrite` after it — so within an RPC host file I/O and PCIe
//! time simply added up, and batches had to be span-capped client-side to
//! keep that serialization from swallowing all concurrency.
//!
//! The pipelined engine splits a batch into fixed-size chunks of
//! [`crate::GpufsConfig::io_chunk_pages`] pages and overlaps the stages:
//!
//! ```text
//! ReadPages   pread c0 | pread c1 | pread c2 |
//!                      | DMA c0   | DMA c1   | DMA c2
//! WritePages  gather c0 | gather c1 | gather c2 |
//!                       | pwrite c0 | pwrite c1 | pwrite c2
//! ```
//!
//! The worker's clock carries the file-I/O lane; the DMA lane is a chain
//! of [`gpusim::Gpu::dma_h2d_scattered_chunk`] reservations, each issued
//! no earlier than its data is ready *and* no earlier than the previous
//! chunk ends (chunks of one transaction never overlap each other on the
//! engine). Setup is paid once, on chunk 0; each later chunk charges the
//! cheap CPU-side submit [`simtime::Timings::dma_chunk_ns`] to the
//! worker. `io_chunk_pages = 0` — or any chunk at least the batch width —
//! collapses to exactly the serialized engine.
//!
//! Error semantics are those of the serialized engine: a failure in any
//! chunk fails the whole RPC (the requester unwinds the batch — frames
//! released on reads, every page's dirty flag re-armed on writes — so
//! partially-DMA'd chunks are never observable).

use gpusim::{DevPtr, Gpu};
use hostfs::{FsError, HostFd, HostFs};
use simtime::{Clock, Nanos};

use super::ServeStats;
use crate::rpc::{PageRead, PageWrite, RespOk};

/// Pages per chunk for a batch of `len` pages under the `io_chunk_pages`
/// setting (`0` = the whole batch in one chunk, i.e. serialized). Shared
/// with the remote mirror of this engine in `remote::client`.
pub(crate) fn chunk_len(io_chunk_pages: usize, len: usize) -> usize {
    if io_chunk_pages == 0 {
        len.max(1)
    } else {
        io_chunk_pages.min(len.max(1))
    }
}

/// Serve a `ReadPages` batch: pread chunk *k+1* while the scatter-gather
/// DMA of chunk *k* is in flight. Returns the per-page byte counts, the
/// per-page ready times, and the virtual time the requester may proceed.
///
/// `io_depth` is the staging depth in chunks. At the default `2`
/// (classic double-buffering) the engine behaves exactly as before:
/// staging is effectively unbounded within the batch and the response
/// time is the end of the *last* chunk's DMA, so every page's ready time
/// equals the response time. At depths ≥ 3 the engine models a ring of
/// `io_depth` staging buffers — chunk *j*'s pread waits for chunk
/// *j − io_depth*'s DMA to free its buffer — and responds *early*: up to
/// `io_depth − 2` trailing chunk DMAs may outlive the response, with
/// each page's individual ready time (its chunk's DMA completion)
/// carried back so the client can gate pins per page instead of on the
/// whole batch.
#[allow(clippy::too_many_arguments)]
pub(super) fn read_pages(
    fs: &HostFs,
    gpu: &Gpu,
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    io_depth: usize,
    fd: HostFd,
    pages: &[PageRead],
) -> (Result<RespOk, FsError>, Nanos) {
    if pages.len() > 1 {
        stats.on(|s| {
            s.batched_rpcs.incr();
            s.pages_per_rpc.add(pages.len() as u64);
        });
    }
    let deep = io_depth > 2;
    let submit_ns = fs.timings().dma_chunk_ns;
    let mut ns = Vec::with_capacity(pages.len());
    let mut ready: Vec<Nanos> = Vec::with_capacity(pages.len());
    // When each chunk's staging buffer frees again: its DMA end, or 0 for
    // chunks that shipped nothing.
    let mut free_at: Vec<Nanos> = Vec::new();
    let mut dma_end: Nanos = 0;
    let mut first_chunk = true;
    for (j, chunk) in pages
        .chunks(chunk_len(io_chunk_pages, pages.len()))
        .enumerate()
    {
        // Depth-k staging bound: chunk j reuses the buffer of chunk
        // j - io_depth and must wait for that DMA to complete. Double
        // buffering keeps the prior engine's unbounded-within-the-batch
        // staging for bit-for-bit compatibility.
        if deep && j >= io_depth {
            clock.wait_until(free_at[j - io_depth]);
        }
        // Stage 1 — host file I/O of this chunk, serialized on the
        // worker's clock (the host file system pipelines/serializes the
        // individual preads as its cost model says).
        let pread_sp = obs::span("pread");
        let pread_start = clock.now();
        let mut staging: Vec<Vec<u8>> = Vec::with_capacity(chunk.len());
        for page in chunk {
            let mut buf = vec![0u8; page.len];
            match fs.pread(fd, page.offset, &mut buf, clock.now()) {
                Ok((n, t)) => {
                    clock.wait_until(t);
                    buf.truncate(n);
                    ns.push(n);
                    staging.push(buf);
                }
                Err(e) => return (Err(e), clock.now()),
            }
        }
        pread_sp.finish_attrs(
            pread_start,
            clock.now(),
            &[("chunk", j as u64), ("pages", chunk.len() as u64)],
        );
        // Stage 2 — ship the chunk asynchronously: the DMA is issued at
        // max(data ready, previous chunk's end) and the worker moves on
        // to the next chunk's preads without waiting for it.
        let parts: Vec<(&[u8], DevPtr)> = staging
            .iter()
            .zip(chunk)
            .filter(|(buf, _)| !buf.is_empty())
            .map(|(buf, page)| (buf.as_slice(), page.dst))
            .collect();
        let chunk_ready = if parts.is_empty() {
            0
        } else {
            if !first_chunk {
                clock.advance(submit_ns);
            }
            let dma_sp = obs::span("dma");
            let dma_issue = clock.now().max(dma_end);
            let r = gpu.dma_h2d_scattered_chunk(&parts, dma_issue, first_chunk);
            let chunk_bytes: u64 = parts.iter().map(|(b, _)| b.len() as u64).sum();
            stats.on(|s| {
                s.bytes_h2d.add(chunk_bytes);
                s.read_dma_chunks.incr();
            });
            // The DMA runs asynchronously: its span covers the engine
            // reservation (issue to completion), not worker wall time.
            dma_sp.finish_attrs(
                dma_issue,
                r.end,
                &[("chunk", j as u64), ("bytes", chunk_bytes)],
            );
            dma_end = r.end;
            first_chunk = false;
            r.end
        };
        free_at.push(chunk_ready);
        for buf in &staging {
            ready.push(if buf.is_empty() { 0 } else { chunk_ready });
        }
    }
    let t = if deep {
        // Early response: all but the last io_depth - 2 chunk DMAs must
        // have landed (the demand page rides in chunk 0, so chunk 0 is
        // always covered); trailing chunks gate their pages through the
        // per-page ready times instead.
        let covered = free_at.len().saturating_sub(io_depth - 2).max(1);
        let gate = free_at[..covered].iter().copied().max().unwrap_or(0);
        gate.max(clock.now())
    } else {
        dma_end.max(clock.now())
    };
    if !deep {
        // The drained engine's pages are all ready at the response.
        ready.fill(t);
    }
    (Ok(RespOk::Read { ns, ready }), t)
}

/// Serve a `WritePages` batch: the D2H gather of chunk *k+1* overlaps the
/// host `pwrite`s of chunk *k*. Unlike reads, each chunk's gather must
/// land in host memory before that chunk's file writes can run, so the
/// worker's clock waits per chunk — but only for *its* chunk, not the
/// whole batch's gather as the serialized engine did.
pub(super) fn write_pages(
    fs: &HostFs,
    gpu: &Gpu,
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    fd: HostFd,
    pages: &[PageWrite],
) -> (Result<RespOk, FsError>, Nanos) {
    if pages.len() > 1 {
        stats.on(|s| {
            s.batched_write_rpcs.incr();
            s.pages_per_write_rpc.add(pages.len() as u64);
        });
    }
    let issue = clock.now();
    let submit_ns = fs.timings().dma_chunk_ns;
    let ino = fs.fstat(fd).map(|m| m.ino).unwrap_or_default();
    if pages.iter().all(|pw| pw.extents.is_empty()) {
        let generation = fs.consistency().generation(ino);
        return (Ok(RespOk::Wrote { n: 0, generation }), clock.now());
    }
    let mut gather_end: Nanos = 0;
    let mut first_chunk = true;
    let mut written = 0usize;
    for chunk in pages.chunks(chunk_len(io_chunk_pages, pages.len())) {
        // Flatten this chunk's dirty extents into one scatter-gather
        // descriptor list; only the modified bytes travel.
        let mut srcs: Vec<(DevPtr, u64)> = Vec::new(); // (gpu addr, file off)
        let mut staging: Vec<Vec<u8>> = Vec::new();
        for pw in chunk {
            for &(off, len) in &pw.extents {
                srcs.push((pw.src + off as usize, pw.page_offset + u64::from(off)));
                staging.push(vec![0u8; len as usize]);
            }
        }
        if srcs.is_empty() {
            continue;
        }
        if !first_chunk {
            clock.advance(submit_ns);
        }
        let mut parts: Vec<(DevPtr, &mut [u8])> = srcs
            .iter()
            .zip(staging.iter_mut())
            .map(|(&(src, _), buf)| (src, buf.as_mut_slice()))
            .collect();
        // The gather chain runs independently of the pwrite lane: chunk
        // k+1's gather starts when the engine frees up (gather k's end),
        // not after chunk k's pwrites.
        let gather_sp = obs::span("gather");
        let gather_issue = issue.max(gather_end);
        let r = gpu.dma_d2h_scattered_chunk(&mut parts, gather_issue, first_chunk);
        drop(parts);
        let chunk_bytes: u64 = staging.iter().map(|b| b.len() as u64).sum();
        stats.on(|s| {
            s.bytes_d2h.add(chunk_bytes);
            s.write_dma_chunks.incr();
        });
        gather_sp.finish_attrs(gather_issue, r.end, &[("bytes", chunk_bytes)]);
        gather_end = r.end;
        first_chunk = false;
        // This chunk's bytes must be in host memory before its pwrites.
        clock.wait_until(r.end);
        let pwrite_sp = obs::span("pwrite");
        let pwrite_start = clock.now();
        for (&(_, file_off), data) in srcs.iter().zip(&staging) {
            match fs.pwrite(fd, file_off, data, clock.now()) {
                Ok((n, t)) => {
                    clock.wait_until(t);
                    written += n;
                }
                Err(e) => return (Err(e), clock.now()),
            }
        }
        pwrite_sp.finish(pwrite_start, clock.now());
    }
    let generation = fs.consistency().generation(ino);
    (
        Ok(RespOk::Wrote {
            n: written,
            generation,
        }),
        clock.now(),
    )
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{call, host, host_chunked, host_depth};
    use super::super::GpufsHost;
    use crate::rpc::{PageRead, PageWrite, Request, RespOk};
    use simtime::{Nanos, Timings};

    fn open(h: &GpufsHost, path: &str, write: bool) -> hostfs::HostFd {
        let (ok, _) = call(
            h,
            Request::Open {
                path: path.into(),
                write,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!("expected Opened")
        };
        fd
    }

    fn read_batch(h: &GpufsHost, fd: hostfs::HostFd, pages: Vec<PageRead>) -> (Vec<usize>, Nanos) {
        let (ok, t) = call(h, Request::ReadPages { fd, pages, gpu: 0 }).unwrap();
        let RespOk::Read { ns, .. } = ok else {
            panic!()
        };
        (ns, t)
    }

    #[test]
    fn daemon_serializes_but_overlaps_dma() {
        // Two reads: the worker's pread of the second should overlap the
        // first's DMA (second completion < strictly-serial sum).
        let h = host();
        h.fs().create_synthetic("/big", 8 << 20, 3).unwrap();
        let fd = open(&h, "/big", false);
        let a = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let b = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let (_, t1) = read_batch(
            &h,
            fd,
            vec![PageRead {
                offset: 0,
                len: 1 << 20,
                dst: a,
            }],
        );
        let (_, t2) = read_batch(
            &h,
            fd,
            vec![PageRead {
                offset: 1 << 20,
                len: 1 << 20,
                dst: b,
            }],
        );
        let pread_and_dma = t1; // first request end-to-end
        assert!(
            t2 < 2 * pread_and_dma,
            "second read ({t2}) should overlap with first ({pread_and_dma})"
        );
    }

    #[test]
    fn batched_read_beats_singletons_and_counts_pages() {
        // The same four pages as one batch vs four singleton requests: the
        // batch must be strictly faster (one RPC round-trip, one DMA
        // setup) and must land in the batch counters.
        let h = host();
        h.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let fd = open(&h, "/batch", false);
        let page = 64 << 10;
        let dst = h.gpus()[0].global().alloc(4 * page).unwrap();
        let pages: Vec<PageRead> = (0..4)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ns, t_batch) = read_batch(&h, fd, pages);
        assert_eq!(ns, vec![page; 4]);
        assert_eq!(h.stats().batched_rpcs.get(), 1);
        assert_eq!(h.stats().pages_per_rpc.get(), 4);
        assert_eq!(h.stats().bytes_h2d.get(), 4 * page as u64);

        // Singleton baseline on a fresh rig (fresh DMA queue and clocks).
        let h2 = host();
        h2.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let fd2 = open(&h2, "/batch", false);
        let dst2 = h2.gpus()[0].global().alloc(4 * page).unwrap();
        let mut t_serial = 0;
        let mut issue = 0;
        for i in 0..4 {
            let (_, t) = h2
                .hub()
                .call(
                    0,
                    0,
                    0,
                    issue,
                    &Timings::default(),
                    Request::ReadPages {
                        fd: fd2,
                        pages: vec![PageRead {
                            offset: (i * page) as u64,
                            len: page,
                            dst: dst2 + i * page,
                        }],
                        gpu: 0,
                    },
                )
                .unwrap();
            issue = t;
            t_serial = t;
        }
        assert_eq!(
            h2.stats().batched_rpcs.get(),
            0,
            "singletons are not batches"
        );
        assert!(
            t_batch < t_serial,
            "batch ({t_batch}) must beat synchronous singletons ({t_serial})"
        );
        // Bytes land identically either way.
        let mut a = vec![0u8; 4 * page];
        let mut b = vec![0u8; 4 * page];
        h.gpus()[0].global().read(dst, &mut a);
        h2.gpus()[0].global().read(dst2, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn batched_write_beats_singletons_and_counts_pages() {
        // Four dirty pages as one WritePages batch vs four singleton
        // requests: the batch must be strictly faster (one round-trip,
        // one D2H setup) and must land in the batch counters.
        let page = 64 << 10;
        let run = |batched: bool| -> (Nanos, u64) {
            let h = host();
            h.fs().create("/wb", &vec![0u8; 4 * page]).unwrap();
            let fd = open(&h, "/wb", true);
            let src = h.gpus()[0].global().alloc(4 * page).unwrap();
            h.gpus()[0].global().write(src, &vec![9u8; 4 * page]);
            let mk = |i: usize| PageWrite {
                src: src + i * page,
                page_offset: (i * page) as u64,
                extents: vec![(0, page as u32)],
            };
            let end = if batched {
                let (_, t) = call(
                    &h,
                    Request::WritePages {
                        fd,
                        pages: (0..4).map(mk).collect(),
                        gpu: 0,
                    },
                )
                .unwrap();
                t
            } else {
                let mut issue = 0;
                for i in 0..4 {
                    let (_, t) = h
                        .hub()
                        .call(
                            0,
                            0,
                            0,
                            issue,
                            &Timings::default(),
                            Request::WritePages {
                                fd,
                                pages: vec![mk(i)],
                                gpu: 0,
                            },
                        )
                        .unwrap();
                    issue = t;
                }
                issue
            };
            let (data, _) = h.fs().read_whole("/wb", 0).unwrap();
            assert!(data.iter().all(|&b| b == 9), "all bytes written");
            assert_eq!(h.stats().bytes_d2h.get(), 4 * page as u64);
            (end, h.stats().batched_write_rpcs.get())
        };
        let (t_batch, batched_rpcs) = run(true);
        let (t_serial, single_rpcs) = run(false);
        assert_eq!(batched_rpcs, 1);
        assert_eq!(single_rpcs, 0, "singletons are not batches");
        assert!(
            t_batch < t_serial,
            "batch ({t_batch}) must beat synchronous singletons ({t_serial})"
        );
    }

    // ------------------------------------------------------------------
    // Pipeline-specific coverage.
    // ------------------------------------------------------------------

    /// Run the same 4-page read batch under `io_chunk` and return its
    /// completion time plus the DMA chunk count.
    fn timed_read(io_chunk: usize) -> (Nanos, u64, Vec<u8>) {
        let page = 64 << 10;
        let h = host_chunked(io_chunk);
        h.fs().create_synthetic("/pipe", 1 << 20, 11).unwrap();
        let fd = open(&h, "/pipe", false);
        let dst = h.gpus()[0].global().alloc(4 * page).unwrap();
        let pages: Vec<PageRead> = (0..4)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ns, t) = read_batch(&h, fd, pages);
        assert_eq!(ns, vec![page; 4]);
        let mut bytes = vec![0u8; 4 * page];
        h.gpus()[0].global().read(dst, &mut bytes);
        (t, h.stats().read_dma_chunks.get(), bytes)
    }

    #[test]
    fn two_chunk_read_completes_earlier_than_serialized() {
        // The tentpole's virtual-time claim, asserted directly: splitting
        // one 4-page batch into 2-page chunks lets the preads of chunk 1
        // hide under the DMA of chunk 0, so the RPC completes strictly
        // earlier than the serialized all-preads-then-one-DMA engine —
        // with identical bytes — and by more than the continuation-submit
        // cost it spends doing so.
        let (t_serial, chunks_serial, bytes_serial) = timed_read(0);
        let (t_piped, chunks_piped, bytes_piped) = timed_read(2);
        assert_eq!(chunks_serial, 1, "serialized = one DMA transaction chunk");
        assert_eq!(chunks_piped, 2, "4 pages / chunk 2");
        assert_eq!(bytes_serial, bytes_piped);
        let saved = t_serial.saturating_sub(t_piped);
        let submit = Timings::default().dma_chunk_ns;
        assert!(
            saved > 4 * submit,
            "pipelined ({t_piped}) must beat serialized ({t_serial}) by more \
             than the submit overhead, saved only {saved}"
        );
        // A chunk at least the batch width is the serialized engine again.
        let (t_wide, chunks_wide, _) = timed_read(64);
        assert_eq!(chunks_wide, 1);
        assert_eq!(t_wide, t_serial, "chunk >= batch is bit-for-bit serialized");
    }

    #[test]
    fn two_chunk_write_overlaps_gather_with_pwrites() {
        let page = 64 << 10;
        let run = |io_chunk: usize| -> (Nanos, u64, Vec<u8>) {
            let h = host_chunked(io_chunk);
            h.fs().create("/wpipe", &vec![0u8; 4 * page]).unwrap();
            let fd = open(&h, "/wpipe", true);
            let src = h.gpus()[0].global().alloc(4 * page).unwrap();
            h.gpus()[0].global().write(src, &vec![7u8; 4 * page]);
            let pages: Vec<PageWrite> = (0..4)
                .map(|i| PageWrite {
                    src: src + i * page,
                    page_offset: (i * page) as u64,
                    extents: vec![(0, page as u32)],
                })
                .collect();
            let (ok, t) = call(&h, Request::WritePages { fd, pages, gpu: 0 }).unwrap();
            let RespOk::Wrote { n, .. } = ok else {
                panic!()
            };
            assert_eq!(n, 4 * page);
            let (data, _) = h.fs().read_whole("/wpipe", 0).unwrap();
            (t, h.stats().write_dma_chunks.get(), data)
        };
        let (t_serial, chunks_serial, data_serial) = run(0);
        let (t_piped, chunks_piped, data_piped) = run(2);
        assert_eq!(chunks_serial, 1);
        assert_eq!(chunks_piped, 2);
        assert_eq!(data_serial, data_piped);
        assert!(
            t_piped < t_serial,
            "pwrites of chunk 0 must hide under the gather of chunk 1 \
             ({t_piped} vs {t_serial})"
        );
    }

    #[test]
    fn single_page_requests_are_identical_at_any_chunk_setting() {
        // Window-1 paging (the paper's on-demand protocol, and the
        // recorded fig4/fig5 baselines' hot path) must be bit-for-bit
        // unaffected by the pipeline: a batch of one is one chunk.
        let run = |io_chunk: usize| -> Vec<Nanos> {
            let h = host_chunked(io_chunk);
            h.fs().create_synthetic("/one", 1 << 20, 9).unwrap();
            let fd = open(&h, "/one", false);
            let dst = h.gpus()[0].global().alloc(64 << 10).unwrap();
            let mut ends = Vec::new();
            let mut issue = 0;
            for i in 0..4u64 {
                let (_, t) = h
                    .hub()
                    .call(
                        0,
                        0,
                        0,
                        issue,
                        &Timings::default(),
                        Request::ReadPages {
                            fd,
                            pages: vec![PageRead {
                                offset: i * (64 << 10),
                                len: 64 << 10,
                                dst,
                            }],
                            gpu: 0,
                        },
                    )
                    .unwrap();
                issue = t;
                ends.push(t);
            }
            ends
        };
        assert_eq!(run(0), run(2), "serialized and pipelined agree at width 1");
    }

    #[test]
    fn chunk_boundary_at_eof_ships_short_and_empty_pages_correctly() {
        // A 4-page batch over a file that ends 100 bytes into page 2:
        // chunk 0 is full, chunk 1 holds a short page and a fully-empty
        // page. The short page must truncate, the empty page must produce
        // ns = 0 and no DMA extent, and the empty tail chunk must not
        // issue a DMA chunk at all.
        let page = 4096usize;
        let h = host_chunked(2);
        h.fs()
            .create("/eofpipe", &vec![3u8; 2 * page + 100])
            .unwrap();
        let fd = open(&h, "/eofpipe", false);
        let dst = h.gpus()[0].global().alloc(4 * page).unwrap();
        let pages: Vec<PageRead> = (0..4)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ns, _) = read_batch(&h, fd, pages);
        assert_eq!(ns, vec![page, page, 100, 0]);
        assert_eq!(
            h.stats().bytes_h2d.get(),
            (2 * page + 100) as u64,
            "not one byte DMA'd beyond EOF"
        );
        assert_eq!(
            h.stats().read_dma_chunks.get(),
            2,
            "chunk 1 still ships its 100-byte extent; no third chunk"
        );
        let mut out = vec![0u8; 100];
        h.gpus()[0].global().read(dst + 2 * page, &mut out);
        assert!(out.iter().all(|&b| b == 3), "short page bytes landed");

        // A batch entirely past EOF: no DMA chunks at all, ns all zero.
        let before = h.stats().read_dma_chunks.get();
        let (ns, _) = read_batch(
            &h,
            fd,
            vec![PageRead {
                offset: (8 * page) as u64,
                len: page,
                dst,
            }],
        );
        assert_eq!(ns, vec![0]);
        assert_eq!(h.stats().read_dma_chunks.get(), before);
    }

    #[test]
    fn batch_smaller_than_one_chunk_is_one_transaction() {
        let page = 4096usize;
        let h = host_chunked(8);
        h.fs().create("/small", &vec![5u8; 3 * page]).unwrap();
        let fd = open(&h, "/small", false);
        let dst = h.gpus()[0].global().alloc(3 * page).unwrap();
        let pages: Vec<PageRead> = (0..3)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ns, _) = read_batch(&h, fd, pages);
        assert_eq!(ns, vec![page; 3]);
        assert_eq!(
            h.stats().read_dma_chunks.get(),
            1,
            "3 pages under a chunk of 8 = one chunk, one setup"
        );
    }

    // ------------------------------------------------------------------
    // Depth-k staging ring coverage.
    // ------------------------------------------------------------------

    /// Run one `n_pages`-page read batch on a `host_depth(io_chunk,
    /// io_depth)` rig; return (response t, per-page ready times, bytes).
    fn depth_read(
        io_chunk: usize,
        io_depth: usize,
        n_pages: usize,
    ) -> (Nanos, Vec<Nanos>, Vec<u8>) {
        let page = 64 << 10;
        let h = host_depth(io_chunk, io_depth);
        h.fs().create_synthetic("/deep", 4 << 20, 13).unwrap();
        let fd = open(&h, "/deep", false);
        let dst = h.gpus()[0].global().alloc(n_pages * page).unwrap();
        let pages: Vec<PageRead> = (0..n_pages)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ok, t) = call(&h, Request::ReadPages { fd, pages, gpu: 0 }).unwrap();
        let RespOk::Read { ns, ready } = ok else {
            panic!()
        };
        assert_eq!(ns, vec![page; n_pages]);
        let mut bytes = vec![0u8; n_pages * page];
        h.gpus()[0].global().read(dst, &mut bytes);
        (t, ready, bytes)
    }

    #[test]
    fn deep_staging_responds_earlier_than_double_buffering() {
        // An 8-chunk read at depth 4 may leave the last two chunk DMAs in
        // flight at response time, so the RPC completes strictly earlier
        // than the depth-2 engine which drains every DMA first — with
        // identical bytes, and with every page still carrying a ready
        // time the client can gate on.
        let (t2, ready2, bytes2) = depth_read(1, 2, 8);
        let (t4, ready4, bytes4) = depth_read(1, 4, 8);
        assert_eq!(bytes2, bytes4);
        assert!(
            t4 < t2,
            "depth-4 early response ({t4}) must beat the drained depth-2 \
             response ({t2})"
        );
        // Depth 2 publishes every page at the engine's response time
        // (the returned t adds the RPC completion overhead on top);
        // depth 4's trailing pages become ready after even that.
        assert!(ready2.iter().all(|&r| r == ready2[0] && r <= t2));
        assert!(ready4.iter().all(|&r| r > 0));
        let past_response = ready4.iter().filter(|&&r| r > t4).count();
        assert!(
            (1..=2).contains(&past_response),
            "up to io_depth - 2 = 2 trailing chunks may outlive the \
             response, got {past_response}"
        );
        // The last page is always among the uncovered tail; chunk 0 (the
        // demand page's chunk) is always covered by the response gate.
        assert!(ready4[7] > t4);
        assert!(ready4[0] <= t4);
    }

    #[test]
    fn deep_staging_ready_times_are_monotone_per_chunk() {
        // Chunk DMAs of one transaction never overlap each other, so the
        // per-page ready times must be non-decreasing in page order (all
        // pages of one chunk share the chunk's DMA completion).
        let (_, ready, _) = depth_read(2, 5, 12);
        for w in ready.windows(2) {
            assert!(w[0] <= w[1], "ready times regressed: {ready:?}");
        }
        // 12 pages / chunk 2 = 6 distinct chunk completions.
        let mut distinct: Vec<Nanos> = ready.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), 6);
    }

    #[test]
    fn deep_staging_bounds_pread_lead_over_dma() {
        // The ring bound itself: at depth 3 chunk j's pread cannot start
        // before chunk j-3's DMA frees its buffer, so a long batch at
        // depth 3 must respond no earlier than at a deeper setting that
        // relaxes the bound (and strictly later than unbounded depth-2
        // staging would allow the DMA lane to lag... measured simply:
        // deeper staging never hurts).
        let (t3, _, bytes3) = depth_read(1, 3, 10);
        let (t6, _, bytes6) = depth_read(1, 6, 10);
        assert_eq!(bytes3, bytes6);
        assert!(
            t6 <= t3,
            "a deeper ring ({t6}) can only relax the staging bound vs \
             depth 3 ({t3})"
        );
    }

    #[test]
    fn singleton_and_single_chunk_batches_ignore_io_depth() {
        // A batch that fits in one chunk has no trailing DMAs to leave in
        // flight: `covered` clamps to 1 and the response equals the lone
        // chunk's DMA end — bit-for-bit the depth-2 engine. This is the
        // fig4/fig5 compat guarantee for the hot window-1 path.
        for (io_chunk, n_pages) in [(0, 1), (0, 4), (8, 3)] {
            let (t2, ready2, bytes2) = depth_read(io_chunk, 2, n_pages);
            let (t7, ready7, bytes7) = depth_read(io_chunk, 7, n_pages);
            assert_eq!(t2, t7, "chunkless batch must not see io_depth");
            assert_eq!(ready2, ready7);
            assert_eq!(bytes2, bytes7);
        }
    }

    #[test]
    fn pwrite_error_mid_pipeline_fails_whole_rpc_and_daemon_survives() {
        // A WritePages batch against a read-only host descriptor: chunk
        // 0's D2H gather succeeds (the engine has already moved bytes and
        // charged the direction) before the first pwrite errors. The
        // whole RPC must fail, later chunks must never run, and the
        // daemon must keep serving.
        let page = 4096usize;
        let h = host_chunked(2);
        h.fs().create("/ro", &vec![0u8; 4 * page]).unwrap();
        let fd = open(&h, "/ro", false); // read-only descriptor
        let src = h.gpus()[0].global().alloc(4 * page).unwrap();
        h.gpus()[0].global().write(src, &vec![9u8; 4 * page]);
        let pages: Vec<PageWrite> = (0..4)
            .map(|i| PageWrite {
                src: src + i * page,
                page_offset: (i * page) as u64,
                extents: vec![(0, page as u32)],
            })
            .collect();
        let err = call(&h, Request::WritePages { fd, pages, gpu: 0 });
        assert!(matches!(
            err,
            Err(crate::error::GpufsError::Host(
                hostfs::FsError::PermissionDenied(_)
            ))
        ));
        assert_eq!(
            h.stats().write_dma_chunks.get(),
            1,
            "the pipeline stops at the failing chunk; chunk 1 never gathers"
        );
        let (data, _) = h.fs().read_whole("/ro", 0).unwrap();
        assert!(data.iter().all(|&b| b == 0), "no byte reached the file");
        // The daemon is still healthy.
        let (ok, _) = call(&h, Request::Stat { path: "/ro".into() }).unwrap();
        assert!(matches!(ok, RespOk::Stat { size, .. } if size == 4 * page as u64));
    }
}
