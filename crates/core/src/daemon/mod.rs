//! The CPU-side GPUfs daemon (paper §4, "communication layer").
//!
//! A pool of user-level threads in the host application polls the RPC
//! channels and serves file requests against the host file system,
//! initiating DMA transfers directly to or from GPU buffer-cache pages.
//! The module splits along the daemon's three concerns:
//!
//! * **`mod.rs` (this file)** — the dispatcher/worker-pool core:
//!   [`GpufsHost`] lifecycle, the worker loop, and [`DaemonStats`].
//!   Dispatch is the fair channel scan in `RpcHub::next`: workers park on
//!   one condvar and each claim serves exactly one request.
//! * **[`handlers`]** — one handler per request kind: the metadata
//!   operations (open/close/fsync/unlink/truncate/stat) and the dispatch
//!   match itself.
//! * **[`pipeline`]** — the staged, chunked I/O engine behind the two
//!   bulk-data requests. A batched `ReadPages` is streamed in chunks of
//!   [`crate::GpufsConfig::io_chunk_pages`]: the worker preads chunk
//!   *k+1* while the scatter-gather DMA of chunk *k* is in flight, so
//!   host file I/O and PCIe transfer overlap *inside* one RPC (the
//!   paper's Figure 5 pipelining), not just across RPCs. `WritePages` is
//!   symmetric: the D2H gather of chunk *k+1* overlaps the `pwrite`s of
//!   chunk *k*. Chunk 0 pays the DMA setup; later chunks continue the
//!   same scatter-gather transaction for a cheap CPU-side submit.
//!
//! The pool defaults to a single worker — the paper restricts
//! GPU-related CPU load to one core — and scales with
//! [`crate::GpufsConfig::daemon_workers`]. Contention between
//! concurrently served requests is arbitrated by the shared `simtime`
//! resources underneath — the host file system's disk/page-cache devices
//! and the per-direction PCIe [`simtime::BandwidthResource`]s — not by
//! the real thread count, so virtual results are reproducible at any
//! pool size.

pub(crate) mod handlers;
pub(crate) mod pipeline;

use std::sync::Arc;
use std::thread::JoinHandle;

use gpusim::Gpu;
use hostfs::HostFs;
use obs::{Counter, Labels, Registry, Tracer};
use simtime::Clock;

use crate::config::GpufsConfig;
use crate::remote::HostProxy;
use crate::rpc::{Request, RpcHub};

/// Activity counters of the host daemon.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// RPC requests served.
    pub requests: Counter,
    /// Bytes moved host→device.
    pub bytes_h2d: Counter,
    /// Bytes moved device→host.
    pub bytes_d2h: Counter,
    /// Open requests forwarded to the host FS.
    pub opens: Counter,
    /// `ReadPages` requests that carried more than one page (the batches
    /// readahead produces; a plain miss is a batch of one and not counted).
    pub batched_rpcs: Counter,
    /// Total pages carried by those multi-page requests. Divide by
    /// [`DaemonStats::batched_rpcs`] for the mean batch width.
    pub pages_per_rpc: Counter,
    /// `WritePages` requests that carried more than one page (the batches
    /// bulk write-back produces; a single-page sync is a batch of one and
    /// not counted) — the write-side mirror of
    /// [`DaemonStats::batched_rpcs`].
    pub batched_write_rpcs: Counter,
    /// Total pages carried by those multi-page write requests. Divide by
    /// [`DaemonStats::batched_write_rpcs`] for the mean batch width.
    pub pages_per_write_rpc: Counter,
    /// H2D scatter-gather DMA chunks issued by the read pipeline. Equals
    /// the `ReadPages` count when the engine is serialized
    /// (`io_chunk_pages = 0`: one transaction, one chunk per RPC) and
    /// grows with the pipeline depth otherwise.
    pub read_dma_chunks: Counter,
    /// D2H gather chunks issued by the write pipeline — the write-side
    /// mirror of [`DaemonStats::read_dma_chunks`].
    pub write_dma_chunks: Counter,
}

impl DaemonStats {
    /// A read-only sum view over `parts`: each field aggregates the
    /// matching field of every part. The host-wide aggregate, the per-GPU
    /// and per-tenant breakdowns, and a fleet's per-host rollups are all
    /// views built this way over the per-`(gpu, tenant)` leaf sheets —
    /// one write path, so the books cannot drift.
    #[must_use]
    pub fn sum_of<'a>(parts: impl IntoIterator<Item = &'a DaemonStats> + Clone) -> Self {
        let field =
            |f: fn(&DaemonStats) -> &Counter| Counter::sum(parts.clone().into_iter().map(f));
        Self {
            requests: field(|s| &s.requests),
            bytes_h2d: field(|s| &s.bytes_h2d),
            bytes_d2h: field(|s| &s.bytes_d2h),
            opens: field(|s| &s.opens),
            batched_rpcs: field(|s| &s.batched_rpcs),
            pages_per_rpc: field(|s| &s.pages_per_rpc),
            batched_write_rpcs: field(|s| &s.batched_write_rpcs),
            pages_per_write_rpc: field(|s| &s.pages_per_write_rpc),
            read_dma_chunks: field(|s| &s.read_dma_chunks),
            write_dma_chunks: field(|s| &s.write_dma_chunks),
        }
    }

    /// Register every field with `registry` under `labels`, prefixed
    /// `daemon_` (the same cells — the registry adds names, not copies).
    pub fn register(&self, registry: &Registry, labels: Labels) {
        for (name, counter) in [
            ("daemon_requests", &self.requests),
            ("daemon_bytes_h2d", &self.bytes_h2d),
            ("daemon_bytes_d2h", &self.bytes_d2h),
            ("daemon_opens", &self.opens),
            ("daemon_batched_rpcs", &self.batched_rpcs),
            ("daemon_pages_per_rpc", &self.pages_per_rpc),
            ("daemon_batched_write_rpcs", &self.batched_write_rpcs),
            ("daemon_pages_per_write_rpc", &self.pages_per_write_rpc),
            ("daemon_read_dma_chunks", &self.read_dma_chunks),
            ("daemon_write_dma_chunks", &self.write_dma_chunks),
        ] {
            registry.register(name, labels, counter);
        }
    }

    /// Every counter as a `(name, value)` row — the one list tests
    /// iterate so a newly added counter cannot silently escape the
    /// per-GPU / per-tenant sum-to-aggregate invariant.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests.get()),
            ("bytes_h2d", self.bytes_h2d.get()),
            ("bytes_d2h", self.bytes_d2h.get()),
            ("opens", self.opens.get()),
            ("batched_rpcs", self.batched_rpcs.get()),
            ("pages_per_rpc", self.pages_per_rpc.get()),
            ("batched_write_rpcs", self.batched_write_rpcs.get()),
            ("pages_per_write_rpc", self.pages_per_write_rpc.get()),
            ("read_dma_chunks", self.read_dma_chunks.get()),
            ("write_dma_chunks", self.write_dma_chunks.get()),
        ]
    }
}

/// The stat sheet one served request lands on: the single
/// per-`(gpu, tenant)` *leaf* sheet of the requesting GPU and issuing
/// tenant. The host-wide aggregate and the per-GPU / per-tenant
/// breakdowns are [`DaemonStats::sum_of`] views over these leaves, so
/// the one write [`ServeStats::on`] makes here is visible on every sheet
/// by construction — which is what makes [`GpufsHost::stats_for`] and
/// [`GpufsHost::stats_for_tenant`] trustworthy when several mounts (or
/// tenant classes) share one daemon.
pub(crate) struct ServeStats<'a> {
    leaf: &'a DaemonStats,
}

impl ServeStats<'_> {
    /// Apply one counter update to the request's leaf sheet (every
    /// aggregate view reads through to it).
    pub(crate) fn on(&self, f: impl Fn(&DaemonStats)) {
        f(self.leaf);
    }
}

/// The GPUfs host side: file system, GPUs, RPC hub, and the daemon's
/// worker pool.
///
/// Constructing a `GpufsHost` starts the workers; dropping it shuts the
/// pool down after draining outstanding requests across every worker.
#[derive(Debug)]
pub struct GpufsHost {
    fs: Arc<HostFs>,
    gpus: Vec<Arc<Gpu>>,
    hub: Arc<RpcHub>,
    /// The per-`(gpu, tenant)` leaf sheets, indexed `[gpu][tenant]` —
    /// the only daemon stats ever written. Everything below is a
    /// [`DaemonStats::sum_of`] view over this grid.
    cell_stats: Vec<Vec<Arc<DaemonStats>>>,
    /// Host-wide aggregate: a sum view over the whole leaf grid.
    stats: Arc<DaemonStats>,
    /// Per-GPU breakdown of [`GpufsHost::stats`], indexed by GPU id: when
    /// several mounts share this daemon, each request is attributed to
    /// the GPU that issued it (the envelope names it), so fleets can tell
    /// which GPU generated which RPC traffic. A sum view over the GPU's
    /// row of the leaf grid.
    per_gpu_stats: Vec<Arc<DaemonStats>>,
    /// Per-tenant breakdown of [`GpufsHost::stats`], indexed by
    /// [`crate::rpc::TenantId`] — the multi-tenant mirror of the per-GPU
    /// sheets (single-tenant hosts have exactly one, equal to the
    /// aggregate). A sum view over the tenant's column of the leaf grid.
    per_tenant_stats: Vec<Arc<DaemonStats>>,
    /// The host's metrics registry: every daemon leaf sheet, aggregate
    /// view, and mount cache sheet registers here under hierarchical
    /// labels.
    registry: Arc<Registry>,
    /// The host's span tracer (off by default; see [`GpufsHost::set_tracing`]).
    tracer: Tracer,
    worker_count: usize,
    io_chunk_pages: usize,
    io_depth: usize,
    /// When set, this daemon is the host side of a cross-host fleet:
    /// workers serve requests through the proxy's wire boundary
    /// (`remote::client::serve`) instead of calling the file system
    /// directly. `fs` then aliases the storage server's file system —
    /// kept for mount probing, seeding, and auditing, exactly the
    /// WRAPFS-device view the paper's consistency layer assumes.
    proxy: Option<Arc<HostProxy>>,
    workers: Vec<JoinHandle<()>>,
}

impl GpufsHost {
    /// Start the host daemon serving `gpus` against `fs` in the paper
    /// prototype's communication shape — one RPC channel, one worker
    /// thread — with the default pipelined I/O engine.
    #[must_use]
    pub fn new(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>) -> Self {
        Self::with_concurrency(fs, gpus, 1, 1)
    }

    /// Start the host daemon with the host-side knobs of `config`
    /// ([`GpufsConfig::rpc_channels`], [`GpufsConfig::daemon_workers`],
    /// [`GpufsConfig::io_chunk_pages`], and [`GpufsConfig::io_depth`]).
    #[must_use]
    pub fn with_config(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>, config: &GpufsConfig) -> Self {
        Self::with_opts(fs, gpus, config)
    }

    /// Start the host daemon with `rpc_channels` independent request
    /// channels served by a pool of `daemon_workers` threads (both
    /// clamped to ≥ 1; `1, 1` reproduces the original single-FIFO,
    /// single-threaded event loop). The I/O engine keeps the default
    /// chunk size; use [`GpufsHost::with_config`] to set it.
    #[must_use]
    pub fn with_concurrency(
        fs: Arc<HostFs>,
        gpus: Vec<Arc<Gpu>>,
        rpc_channels: usize,
        daemon_workers: usize,
    ) -> Self {
        let config = GpufsConfig::default().with_concurrency(rpc_channels, daemon_workers);
        Self::with_opts(fs, gpus, &config)
    }

    /// Start a *proxy-backed* host daemon: every request is served over
    /// `proxy`'s wire boundary against the remote [`StorageServer`]
    /// (with the proxy's host-local page cache in front), never against
    /// a local file system. [`GpufsHost::fs`] returns the server's file
    /// system — the shared WRAPFS-device view mounts probe and audits
    /// read.
    ///
    /// [`StorageServer`]: crate::remote::StorageServer
    #[must_use]
    pub fn with_proxy(proxy: Arc<HostProxy>, gpus: Vec<Arc<Gpu>>, config: &GpufsConfig) -> Self {
        let fs = Arc::clone(proxy.server().fs());
        Self::build(fs, gpus, config, Some(proxy))
    }

    fn with_opts(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>, config: &GpufsConfig) -> Self {
        Self::build(fs, gpus, config, None)
    }

    fn build(
        fs: Arc<HostFs>,
        gpus: Vec<Arc<Gpu>>,
        config: &GpufsConfig,
        proxy: Option<Arc<HostProxy>>,
    ) -> Self {
        let hub = Arc::new(RpcHub::with_tenancy(
            config.rpc_channels,
            config.num_tenants(),
            &config.tenant_weights,
            &config.tenant_admission,
        ));
        let registry = Arc::new(Registry::new());
        let tracer = Tracer::new();
        // One leaf sheet per (gpu, tenant) cell — the single write path —
        // and sum views for every rollup anyone reads.
        let n_tenants = hub.num_tenants();
        let cell_stats: Vec<Vec<Arc<DaemonStats>>> = (0..gpus.len())
            .map(|g| {
                (0..n_tenants)
                    .map(|t| {
                        let leaf = Arc::new(DaemonStats::default());
                        leaf.register(&registry, Labels::gpu(g as u32).with_tenant(t as u32));
                        leaf
                    })
                    .collect()
            })
            .collect();
        let stats = Arc::new(DaemonStats::sum_of(
            cell_stats.iter().flatten().map(Arc::as_ref),
        ));
        stats.register(&registry, Labels::none());
        let per_gpu_stats: Vec<Arc<DaemonStats>> = cell_stats
            .iter()
            .map(|row| Arc::new(DaemonStats::sum_of(row.iter().map(Arc::as_ref))))
            .collect();
        let per_tenant_stats: Vec<Arc<DaemonStats>> = (0..n_tenants)
            .map(|t| {
                Arc::new(DaemonStats::sum_of(
                    cell_stats.iter().map(move |row| row[t].as_ref()),
                ))
            })
            .collect();
        let worker_count = config.daemon_workers.max(1);
        let io_chunk_pages = config.io_chunk_pages;
        let io_depth = config.io_depth.max(2);
        let workers = (0..worker_count)
            .map(|w| {
                let fs = Arc::clone(&fs);
                let gpus = gpus.clone();
                let hub = Arc::clone(&hub);
                let cells = cell_stats.clone();
                let tracer = tracer.clone();
                let proxy = proxy.clone();
                std::thread::Builder::new()
                    .name(format!("gpufs-worker-{w}"))
                    .spawn(move || {
                        worker_loop(
                            &fs,
                            proxy.as_deref(),
                            &gpus,
                            &hub,
                            &cells,
                            &tracer,
                            io_chunk_pages,
                            io_depth,
                        )
                    })
                    .unwrap_or_else(|e| {
                        // No daemon without its worker threads: spawn
                        // failure (EAGAIN at process thread limits) is fatal
                        // to construction, and this constructor has no
                        // Result channel to its callers.
                        panic!("spawn gpufs daemon worker {w}: {e}")
                    })
            })
            .collect();
        Self {
            fs,
            gpus,
            hub,
            cell_stats,
            stats,
            per_gpu_stats,
            per_tenant_stats,
            registry,
            tracer,
            worker_count,
            io_chunk_pages,
            io_depth,
            proxy,
            workers,
        }
    }

    /// The host file system.
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        &self.fs
    }

    /// The GPUs served by this daemon.
    #[must_use]
    pub fn gpus(&self) -> &[Arc<Gpu>] {
        &self.gpus
    }

    /// The RPC hub (used by mounts to issue calls).
    #[must_use]
    pub fn hub(&self) -> &Arc<RpcHub> {
        &self.hub
    }

    /// The host proxy this daemon serves through, when it is the host
    /// side of a cross-host fleet (`None` for a local daemon).
    #[must_use]
    pub fn proxy(&self) -> Option<&Arc<HostProxy>> {
        self.proxy.as_ref()
    }

    /// Daemon activity counters (aggregated over the worker pool and
    /// every GPU this daemon serves). See [`GpufsHost::stats_for`] for
    /// the per-GPU breakdown.
    #[must_use]
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Daemon activity counters attributed to GPU `gpu_id` alone. Each
    /// served request lands on both the aggregate sheet and the sheet of
    /// the GPU that issued it, so summing `stats_for` over every GPU
    /// reproduces [`GpufsHost::stats`] counter for counter.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_id` is not a GPU of this host.
    #[must_use]
    pub fn stats_for(&self, gpu_id: usize) -> &DaemonStats {
        &self.per_gpu_stats[gpu_id]
    }

    /// Daemon activity counters attributed to `tenant` alone (clamped to
    /// the last tenant, mirroring the dispatch-side clamp). Summing over
    /// every tenant reproduces [`GpufsHost::stats`] counter for counter.
    #[must_use]
    pub fn stats_for_tenant(&self, tenant: crate::rpc::TenantId) -> &DaemonStats {
        &self.per_tenant_stats[tenant.min(self.per_tenant_stats.len() - 1)]
    }

    /// Daemon activity counters attributed to one `(gpu, tenant)` cell —
    /// the leaf sheets every view above is summed from.
    #[must_use]
    pub fn stats_for_cell(&self, gpu_id: usize, tenant: crate::rpc::TenantId) -> &DaemonStats {
        let row = &self.cell_stats[gpu_id];
        &row[tenant.min(row.len() - 1)]
    }

    /// Tenant classes this host's daemon distinguishes (≥ 1).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.per_tenant_stats.len()
    }

    /// The host's metrics registry: every daemon and mount counter sheet,
    /// keyed `name{host=..,gpu=..,tenant=..}`, snapshottable in one call.
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The host's span tracer. Spans are collected only after
    /// [`GpufsHost::set_tracing`]`(true)`; drain them with
    /// [`Tracer::snapshot`].
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Turn span tracing on or off. Off (the default) is time-transparent:
    /// virtual results are bit-identical to a build without tracing (the
    /// `trace_equiv` integration test pins this).
    pub fn set_tracing(&self, on: bool) {
        self.tracer.set_enabled(on);
    }

    /// Size of the worker pool this host was started with.
    #[must_use]
    pub fn daemon_workers(&self) -> usize {
        self.worker_count
    }

    /// Chunk size (in buffer-cache pages) of the pipelined I/O engine
    /// this host was started with; `0` is the serialized engine.
    #[must_use]
    pub fn io_chunk_pages(&self) -> usize {
        self.io_chunk_pages
    }

    /// Staging depth (in chunks) of the pipelined read engine this host
    /// was started with; `2` is classic double-buffering.
    #[must_use]
    pub fn io_depth(&self) -> usize {
        self.io_depth
    }

    /// Stop the worker pool. Idempotent. Requests queued before the stop
    /// are served first (each worker drains claims until none remain);
    /// calls arriving after it fail with
    /// [`crate::GpufsError::DaemonStopped`] — a threadblock spinning on an
    /// in-flight request is always answered, never stranded.
    pub fn shutdown(&mut self) {
        self.hub.close();
        for handle in self.workers.drain(..) {
            if let Err(payload) = handle.join() {
                // A worker that died took in-flight requests with it;
                // propagate its panic (with the original payload) rather
                // than reporting a clean shutdown.
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for GpufsHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Static span name for serving one request kind (span labels must be
/// `&'static str`, so the `serve:` prefix is baked per kind).
fn serve_span_name(req: &Request) -> &'static str {
    match req.kind_name() {
        "Open" => "serve:Open",
        "Close" => "serve:Close",
        "ReadPages" => "serve:ReadPages",
        "WritePages" => "serve:WritePages",
        "Fsync" => "serve:Fsync",
        "Unlink" => "serve:Unlink",
        "Truncate" => "serve:Truncate",
        _ => "serve:Stat",
    }
}

/// One worker of the daemon pool: claim requests from the hub's channels
/// until shutdown, serving each against the host FS and DMA engines.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    fs: &HostFs,
    proxy: Option<&HostProxy>,
    gpus: &[Arc<Gpu>],
    hub: &RpcHub,
    cells: &[Vec<Arc<DaemonStats>>],
    tracer: &Tracer,
    io_chunk_pages: usize,
    io_depth: usize,
) {
    let timings = fs.timings().clone();
    while let Some(env) = hub.next() {
        let row = &cells[env.gpu];
        let stats = ServeStats {
            leaf: &row[env.tenant.min(row.len() - 1)],
        };
        stats.on(|s| s.requests.incr());
        // Adopt the issuing g* call's trace context so this worker's
        // spans (and any it forwards over the wire) nest under the
        // client's RPC span.
        let _scope = tracer.adopt(env.ctx);
        // Each request is timed from its own issue point: poll-notice
        // latency plus dispatch, then the host file system and DMA
        // engines — which carry all the real serialization (disk head,
        // PCIe direction). The daemon's own event loop is orders of
        // magnitude faster than either and is not modeled as a shared
        // bottleneck, which also makes virtual time independent of the
        // real worker count (requests drain in claim order regardless).
        let mut clock = Clock::starting_at(env.issue + timings.rpc_poll_ns);
        clock.advance(timings.rpc_dispatch_ns);
        let sp = obs::span(serve_span_name(&env.req));
        let serve_start = clock.now();
        let (result, end) = match proxy {
            // Host side of a cross-host fleet: the same serve sequence,
            // but through the proxy's wire boundary and host cache.
            Some(p) => crate::remote::client::serve(
                p,
                gpus,
                &stats,
                &mut clock,
                io_chunk_pages,
                io_depth,
                env.gpu,
                &env.req,
            ),
            None => handlers::serve(
                fs,
                gpus,
                &stats,
                &mut clock,
                io_chunk_pages,
                io_depth,
                env.gpu,
                &env.req,
            ),
        };
        sp.finish(serve_start, end);
        // Sends fail only if the caller vanished (e.g. a panicking test
        // threadblock); the daemon itself must keep serving others.
        let _ = env.tx.send((result, end));
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::rpc::{Request, RespOk};
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;
    use simtime::{Nanos, Timings};

    pub(crate) fn host() -> GpufsHost {
        pool(1, 1)
    }

    pub(crate) fn pool(channels: usize, workers: usize) -> GpufsHost {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        GpufsHost::with_concurrency(fs, vec![gpu], channels, workers)
    }

    /// A single-channel/single-worker host serving `n` GPUs.
    pub(crate) fn host_gpus(n: usize) -> GpufsHost {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpus = (0..n)
            .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
            .collect();
        GpufsHost::with_concurrency(fs, gpus, 1, 1)
    }

    /// A single-channel/single-worker host whose I/O engine chunks at
    /// `io_chunk_pages` (`0` = serialized).
    pub(crate) fn host_chunked(io_chunk_pages: usize) -> GpufsHost {
        host_depth(io_chunk_pages, 2)
    }

    /// A single-channel/single-worker host with a given chunk size and
    /// read-staging depth.
    pub(crate) fn host_depth(io_chunk_pages: usize, io_depth: usize) -> GpufsHost {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let config = crate::config::GpufsConfig::default()
            .with_io_chunk(io_chunk_pages)
            .with_io_depth(io_depth);
        GpufsHost::with_opts(fs, vec![gpu], &config)
    }

    pub(crate) fn call(h: &GpufsHost, req: Request) -> crate::error::GpufsResult<(RespOk, Nanos)> {
        h.hub().call(0, 0, 0, 0, &Timings::default(), req)
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{call, pool};
    use super::*;
    use crate::rpc::{Request, RespOk};
    use simtime::Timings;

    #[test]
    fn shutdown_is_idempotent_and_rejects_later_calls() {
        let mut h = testutil::host();
        h.shutdown();
        h.shutdown();
        let err = call(&h, Request::Stat { path: "/".into() });
        assert!(matches!(err, Err(crate::error::GpufsError::DaemonStopped)));

        // Multi-worker drain: shut a pool down while requests are in
        // flight from many client threads. Every call must resolve —
        // served before the close, or rejected after it — and the pool
        // must drain all channels and exit (the join below must return).
        let mut h = pool(4, 3);
        h.fs().create("/inflight", &[1u8; 64]).unwrap();
        let outcomes = std::thread::scope(|s| {
            let clients: Vec<_> = (0..8)
                .map(|slot| {
                    let hub = Arc::clone(h.hub());
                    s.spawn(move || {
                        let t = Timings::default();
                        let mut oks = 0u32;
                        let mut stopped = 0u32;
                        for _ in 0..50 {
                            match hub.call(
                                slot,
                                0,
                                0,
                                0,
                                &t,
                                Request::Stat {
                                    path: "/inflight".into(),
                                },
                            ) {
                                Ok((RespOk::Stat { size, .. }, _)) => {
                                    assert_eq!(size, 64);
                                    oks += 1;
                                }
                                Err(crate::error::GpufsError::DaemonStopped) => stopped += 1,
                                other => panic!("unexpected outcome: {other:?}"),
                            }
                        }
                        (oks, stopped)
                    })
                })
                .collect();
            // Let some requests through, then close under load.
            std::thread::yield_now();
            h.shutdown();
            h.shutdown(); // still idempotent with a pool
            clients
                .into_iter()
                .map(|c| c.join().unwrap())
                .collect::<Vec<_>>()
        });
        let served: u32 = outcomes.iter().map(|(o, _)| o).sum();
        let rejected: u32 = outcomes.iter().map(|(_, r)| r).sum();
        assert_eq!(served + rejected, 8 * 50, "every call resolved");
        assert!(matches!(
            call(&h, Request::Stat { path: "/".into() }),
            Err(crate::error::GpufsError::DaemonStopped)
        ));
    }

    #[test]
    fn stats_are_attributed_per_gpu_and_sum_to_the_aggregate() {
        use crate::rpc::PageRead;
        let h = testutil::host_gpus(2);
        h.fs()
            .create("/attr", &(0u32..8192).map(|i| i as u8).collect::<Vec<_>>())
            .unwrap();
        let t = Timings::default();
        let open = |write: bool| {
            let (ok, _) = h
                .hub()
                .call(
                    0,
                    0,
                    0,
                    0,
                    &t,
                    Request::Open {
                        path: "/attr".into(),
                        write,
                        create: false,
                        truncate: false,
                    },
                )
                .unwrap();
            let RespOk::Opened { fd, .. } = ok else {
                panic!()
            };
            fd
        };
        let fd = open(false);
        // GPU 0 reads three pages, GPU 1 reads one: the envelope's GPU id
        // decides which breakdown sheet each request lands on.
        for (gpu, reads) in [(0usize, 3u64), (1, 1)] {
            for i in 0..reads {
                let dst = h.gpus()[gpu].global().alloc(512).unwrap();
                let (_, _) = h
                    .hub()
                    .call(
                        0,
                        0,
                        gpu,
                        0,
                        &t,
                        Request::ReadPages {
                            fd,
                            pages: vec![PageRead {
                                offset: i * 512,
                                len: 512,
                                dst,
                            }],
                            gpu,
                        },
                    )
                    .unwrap();
            }
        }
        let (g0, g1, all) = (h.stats_for(0), h.stats_for(1), h.stats());
        assert_eq!(g0.bytes_h2d.get(), 3 * 512);
        assert_eq!(g1.bytes_h2d.get(), 512);
        assert_eq!(all.bytes_h2d.get(), 4 * 512);
        // The open went to GPU 0's sheet (its envelope named GPU 0).
        assert_eq!((g0.opens.get(), g1.opens.get()), (1, 0));
        // Every counter sums across GPUs to the aggregate.
        assert_eq!(g0.requests.get() + g1.requests.get(), all.requests.get());
        assert_eq!(
            g0.read_dma_chunks.get() + g1.read_dma_chunks.get(),
            all.read_dma_chunks.get()
        );
    }

    #[test]
    fn stats_are_attributed_per_tenant_and_sum_to_the_aggregate() {
        use crate::config::GpufsConfig;
        use crate::rpc::PageRead;
        let fs = Arc::new(HostFs::new(hostfs::HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, gpusim::GpuSpec::small_test()));
        let cfg = GpufsConfig::default().with_tenant_weights(vec![2, 1]);
        let h = GpufsHost::with_config(fs, vec![gpu], &cfg);
        assert_eq!(h.num_tenants(), 2);
        h.fs()
            .create(
                "/shared",
                &(0u32..4096).map(|i| i as u8).collect::<Vec<_>>(),
            )
            .unwrap();
        let t = Timings::default();
        let (ok, _) = h
            .hub()
            .call(
                0,
                0,
                0,
                0,
                &t,
                Request::Open {
                    path: "/shared".into(),
                    write: false,
                    create: false,
                    truncate: false,
                },
            )
            .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        // Tenant 0 reads three pages, tenant 1 reads one: the envelope's
        // tenant tag decides which breakdown sheet each request lands on.
        for (tenant, reads) in [(0usize, 3u64), (1, 1)] {
            for i in 0..reads {
                let dst = h.gpus()[0].global().alloc(512).unwrap();
                h.hub()
                    .call(
                        tenant,
                        tenant,
                        0,
                        0,
                        &t,
                        Request::ReadPages {
                            fd,
                            pages: vec![PageRead {
                                offset: i * 512,
                                len: 512,
                                dst,
                            }],
                            gpu: 0,
                        },
                    )
                    .unwrap();
            }
        }
        let (t0, t1, all) = (h.stats_for_tenant(0), h.stats_for_tenant(1), h.stats());
        assert_eq!(t0.bytes_h2d.get(), 3 * 512);
        assert_eq!(t1.bytes_h2d.get(), 512);
        // The open was tagged tenant 0.
        assert_eq!((t0.opens.get(), t1.opens.get()), (1, 0));
        // Every counter row sums across tenant sheets to the aggregate —
        // iterated over the snapshot so a future counter can't escape.
        for (i, (name, total)) in all.snapshot().into_iter().enumerate() {
            assert_eq!(
                t0.snapshot()[i].1 + t1.snapshot()[i].1,
                total,
                "tenant sheets must sum to the aggregate for `{name}`"
            );
        }
        // An out-of-range tenant tag clamps to the last sheet instead of
        // panicking the worker, mirroring the hub's queue clamping.
        let before = t1.requests.get();
        h.hub()
            .call(
                0,
                7,
                0,
                0,
                &t,
                Request::Stat {
                    path: "/shared".into(),
                },
            )
            .unwrap();
        assert_eq!(h.stats_for_tenant(9).requests.get(), before + 1);
    }

    #[test]
    fn mount_rejects_mismatched_concurrency_config() {
        use crate::config::GpufsConfig;
        let h = pool(4, 3);
        assert_eq!(h.hub().num_channels(), 4);
        assert_eq!(h.daemon_workers(), 3);
        // A config naming different channel/worker counts would be a
        // silent no-op (the hub already exists): mount must reject it.
        let err = h.mount(0, GpufsConfig::small_test());
        assert!(matches!(err, Err(crate::error::GpufsError::InvalidMode(_))));
        let ok = h.mount(0, GpufsConfig::small_test().with_concurrency(4, 3));
        assert!(ok.is_ok());
        // The I/O-engine chunk size is host-side state too: a config
        // disagreeing with the running daemon is rejected, not ignored.
        let err = h.mount(
            0,
            GpufsConfig::small_test()
                .with_concurrency(4, 3)
                .with_io_chunk(0),
        );
        assert!(matches!(err, Err(crate::error::GpufsError::InvalidMode(_))));
        // And the config path agrees with itself end to end.
        let fs = Arc::new(HostFs::new(hostfs::HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, gpusim::GpuSpec::small_test()));
        let cfg = GpufsConfig::small_test()
            .with_concurrency(2, 2)
            .with_io_chunk(0);
        let h2 = GpufsHost::with_config(fs, vec![gpu], &cfg);
        assert_eq!(h2.io_chunk_pages(), 0);
        assert!(h2.mount(0, cfg).is_ok());
    }

    #[test]
    fn worker_pool_serves_concurrent_clients_correctly() {
        use crate::rpc::PageRead;
        let h = pool(4, 3);
        h.fs()
            .create("/pool", &(0u32..4096).map(|i| i as u8).collect::<Vec<_>>())
            .unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/pool".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        std::thread::scope(|s| {
            for slot in 0..8usize {
                let h = &h;
                s.spawn(move || {
                    let t = Timings::default();
                    let dst = h.gpus()[0].global().alloc(512).unwrap();
                    for round in 0..10u64 {
                        let offset = ((slot as u64 * 10 + round) % 8) * 512;
                        let (ok, _) = h
                            .hub()
                            .call(
                                slot,
                                0,
                                0,
                                0,
                                &t,
                                Request::ReadPages {
                                    fd,
                                    pages: vec![PageRead {
                                        offset,
                                        len: 512,
                                        dst,
                                    }],
                                    gpu: 0,
                                },
                            )
                            .unwrap();
                        let RespOk::Read { ns, .. } = ok else {
                            panic!()
                        };
                        assert_eq!(ns, vec![512]);
                        let mut out = vec![0u8; 512];
                        h.gpus()[0].global().read(dst, &mut out);
                        for (i, &b) in out.iter().enumerate() {
                            assert_eq!(b, (offset as usize + i) as u8, "byte {i} of {offset}");
                        }
                    }
                });
            }
        });
        assert_eq!(h.stats().requests.get(), 1 + 8 * 10);
    }
}
