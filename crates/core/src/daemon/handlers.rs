//! Per-request handlers of the daemon worker pool.
//!
//! [`serve`] is the dispatch point a worker enters with a claimed
//! envelope: metadata operations (open/close/fsync/unlink/truncate/stat)
//! are handled inline here against the host file system's cost model,
//! while the two bulk-data requests — `ReadPages` and `WritePages` —
//! delegate to the staged, chunked engine in [`super::pipeline`].

use std::sync::Arc;

use gpusim::Gpu;
use hostfs::{FsError, HostFs, OpenFlags};
use simtime::{Clock, Nanos};

use super::pipeline;
use super::ServeStats;
use crate::rpc::{Request, RespOk};

/// Serve one request. Returns the response and the virtual time at which
/// the requester may proceed (which, for reads, includes DMA the worker
/// itself does not wait for).
#[allow(clippy::too_many_arguments)]
pub(super) fn serve(
    fs: &HostFs,
    gpus: &[Arc<Gpu>],
    stats: &ServeStats<'_>,
    clock: &mut Clock,
    io_chunk_pages: usize,
    io_depth: usize,
    _gpu: usize,
    req: &Request,
) -> (Result<RespOk, FsError>, Nanos) {
    let now = clock.now();
    match req {
        Request::Open {
            path,
            write,
            create,
            truncate,
        } => {
            stats.on(|s| s.opens.incr());
            let flags = OpenFlags {
                read: true,
                write: *write,
                create: *create,
                truncate: *truncate,
            };
            match fs.open(path, flags, now).and_then(|(fd, t)| {
                // fstat on a freshly opened fd can only fail if the fd
                // table is corrupt; surface that to the caller as the
                // open's error instead of panicking the worker.
                fs.fstat(fd).map(|meta| (fd, t, meta))
            }) {
                Ok((fd, t, meta)) => {
                    clock.wait_until(t);
                    let generation = fs.consistency().generation(meta.ino);
                    (
                        Ok(RespOk::Opened {
                            fd,
                            ino: meta.ino,
                            size: meta.size,
                            generation,
                        }),
                        clock.now(),
                    )
                }
                Err(e) => (Err(e), clock.now()),
            }
        }
        Request::Close { fd } => {
            let r = fs.close(*fd).map(|()| RespOk::Done);
            (r, clock.now())
        }
        Request::ReadPages { fd, pages, gpu } => pipeline::read_pages(
            fs,
            &gpus[*gpu],
            stats,
            clock,
            io_chunk_pages,
            io_depth,
            *fd,
            pages,
        ),
        Request::WritePages { fd, pages, gpu } => {
            pipeline::write_pages(fs, &gpus[*gpu], stats, clock, io_chunk_pages, *fd, pages)
        }
        Request::Fsync { fd } => match fs.fsync(*fd, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Unlink { path } => match fs.unlink(path, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Truncate { fd, size } => match fs.ftruncate(*fd, *size, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Stat { path } => {
            let r = fs.stat(path).map(|m| RespOk::Stat {
                ino: m.ino,
                size: m.size,
                writable: m.writable,
                generation: fs.consistency().generation(m.ino),
            });
            (r, clock.now())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{call, host};
    use crate::rpc::{PageRead, PageWrite, Request, RespOk};
    use hostfs::FsError;

    #[test]
    fn open_read_close_via_rpc() {
        let h = host();
        h.fs().create("/f", b"hello world").unwrap();
        let (ok, t_open) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, size, .. } = ok else {
            panic!("expected Opened")
        };
        assert_eq!(size, 11);
        assert!(t_open > 0);

        let dst = h.gpus()[0].global().alloc(4096).unwrap();
        let (ok, t_read) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 0,
                    len: 4096,
                    dst,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Read { ns, .. } = ok else {
            panic!("expected Read")
        };
        assert_eq!(ns, vec![11]);
        assert!(t_read > t_open, "read completion includes pread + DMA");
        let mut out = vec![0u8; 11];
        h.gpus()[0].global().read(dst, &mut out);
        assert_eq!(&out, b"hello world");

        let (ok, _) = call(&h, Request::Close { fd }).unwrap();
        assert!(matches!(ok, RespOk::Done));
    }

    #[test]
    fn write_pages_touch_only_modified_bytes() {
        let h = host();
        h.fs().create("/f", &[0xaau8; 64]).unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: true,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        let src = h.gpus()[0].global().alloc(64).unwrap();
        h.gpus()[0].global().write(src, &[0x55u8; 64]);
        // Diff says only bytes [8,12) and [40,44) changed.
        let (ok, _) = call(
            &h,
            Request::WritePages {
                fd,
                pages: vec![PageWrite {
                    src,
                    page_offset: 0,
                    extents: vec![(8, 4), (40, 4)],
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Wrote { n, .. } = ok else {
            panic!()
        };
        assert_eq!(n, 8);
        let (data, _) = h.fs().read_whole("/f", 0).unwrap();
        assert_eq!(&data[..8], &[0xaa; 8], "unmodified prefix preserved");
        assert_eq!(&data[8..12], &[0x55; 4]);
        assert_eq!(
            &data[12..40],
            &[0xaa; 28],
            "bytes between extents preserved"
        );
        assert_eq!(&data[40..44], &[0x55; 4]);
        assert_eq!(
            h.stats().batched_write_rpcs.get(),
            0,
            "a single-page sync is a batch of one, not counted"
        );
    }

    #[test]
    fn errors_propagate() {
        let h = host();
        let err = call(
            &h,
            Request::Open {
                path: "/missing".into(),
                write: false,
                create: false,
                truncate: false,
            },
        );
        assert!(matches!(
            err,
            Err(crate::error::GpufsError::Host(FsError::NotFound(_)))
        ));
    }

    #[test]
    fn stat_and_unlink() {
        let h = host();
        h.fs().create("/s", &[1u8; 100]).unwrap();
        let (ok, _) = call(&h, Request::Stat { path: "/s".into() }).unwrap();
        let RespOk::Stat { size, .. } = ok else {
            panic!()
        };
        assert_eq!(size, 100);
        call(&h, Request::Unlink { path: "/s".into() }).unwrap();
        assert!(!h.fs().exists("/s"));
    }
}
