//! Open and closed file tables (paper §4.1).
//!
//! GPUfs file descriptors name *files*, not opens: all threadblocks
//! opening the same path share one reference-counted [`GFile`]. When the
//! reference count drops to zero the file moves to the *closed-file
//! table* — indexed by host inode number — keeping its cached pages so
//! that a later `gopen` (common under the GPU's nondeterministic block
//! scheduling, which routinely drives counts to zero while blocks that
//! will reopen the file are still queued) revives the cache instead of
//! refetching it.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use hostfs::{HostFd, Ino};
use parking_lot::Mutex;

use crate::cache::RadixTree;
use crate::config::GOpenMode;

/// Concurrent sequential streams the readahead detector can track per
/// file; sized to the threadblock concurrency of the paper's GPUs.
const SEQ_STREAMS: usize = 32;

/// Stream-slot sentinel for "no stream tracked". Not a valid cursor (a
/// cursor is an end offset of a real access), so a vacant slot can never
/// spuriously classify an access — not even one at offset 0 — as
/// sequential.
const SEQ_VACANT: u64 = u64::MAX;

/// One GPU-side open file: shared by every threadblock that opened it.
#[derive(Debug)]
pub struct GFile {
    path: String,
    mode: GOpenMode,
    host_fd: HostFd,
    ino: Ino,
    /// Size at first `gopen` — what `gfstat` reports for the whole open
    /// (paper Table 1).
    open_size: u64,
    /// Current logical size including local `gwrite` extensions.
    size: AtomicU64,
    /// Host consistency generation this GPU's cache reflects: set at
    /// open, refreshed by every write-back (our own propagated writes must
    /// not look like foreign invalidations on reopen).
    generation: AtomicU64,
    /// Threadblocks currently holding the file open.
    refs: AtomicI64,
    /// High-water mark of bytes this GPU has written back to the host.
    /// Pages of `O_NOSYNC` temporaries evicted under memory pressure land
    /// on the host and must be refetchable below this mark, even though
    /// the file logically lives only on the GPU (paper §3.2).
    host_valid: AtomicU64,
    /// Sequential-stream table for readahead: each slot holds the byte
    /// offset where one recent `gread`/`gmmap` stream ended. GPUfs
    /// descriptors name files, not opens (§3.2), so many threadblocks
    /// stream *disjoint* ranges of one shared file concurrently — one
    /// cursor would see their interleaving as random. A small table of
    /// relaxed words recognizes each stream independently (Linux keeps
    /// per-open readahead state for the same reason); collisions only
    /// narrow the readahead window, never corrupt data.
    seq_streams: [AtomicU64; SEQ_STREAMS],
    /// Round-robin victim pointer for claiming a stream slot.
    seq_victim: AtomicU64,
    /// Write-back batches currently in flight for this file (gathered —
    /// dirty bits already cleared — but not yet confirmed by the host).
    /// `gfsync`'s drain loop waits this out: a page can look clean while
    /// its bytes are still travelling.
    wb_inflight: AtomicUsize,
    /// Virtual time of the latest confirmed write-back shipment; the
    /// clock floor a draining `gfsync` synchronizes its caller to.
    flush_horizon: AtomicU64,
    /// The file's page cache.
    tree: RadixTree,
}

impl GFile {
    /// A freshly opened file with one reference.
    #[must_use]
    pub fn new(
        path: String,
        mode: GOpenMode,
        host_fd: HostFd,
        ino: Ino,
        size: u64,
        generation: u64,
    ) -> Self {
        Self {
            path,
            mode,
            host_fd,
            ino,
            open_size: size,
            size: AtomicU64::new(size),
            generation: AtomicU64::new(generation),
            refs: AtomicI64::new(1),
            host_valid: AtomicU64::new(0),
            seq_streams: std::array::from_fn(|_| AtomicU64::new(SEQ_VACANT)),
            seq_victim: AtomicU64::new(0),
            wb_inflight: AtomicUsize::new(0),
            flush_horizon: AtomicU64::new(0),
            tree: RadixTree::new(),
        }
    }

    /// Host path.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Open mode.
    #[must_use]
    pub fn mode(&self) -> GOpenMode {
        self.mode
    }

    /// Host descriptor used by the daemon for data requests.
    #[must_use]
    pub fn host_fd(&self) -> HostFd {
        self.host_fd
    }

    /// Host inode number.
    #[must_use]
    pub fn ino(&self) -> Ino {
        self.ino
    }

    /// Size at first open.
    #[must_use]
    pub fn open_size(&self) -> u64 {
        self.open_size
    }

    /// Current logical size (open size plus local extensions).
    #[must_use]
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Acquire)
    }

    /// Extend the logical size to at least `end`.
    pub fn grow_to(&self, end: u64) {
        self.size.fetch_max(end, Ordering::AcqRel);
    }

    /// Shrink the logical size (gftruncate).
    pub fn set_size(&self, size: u64) {
        self.size.store(size, Ordering::Release);
    }

    /// Host generation this cache reflects.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Advance the reflected generation (after propagating local writes).
    pub fn observe_generation(&self, gen: u64) {
        self.generation.fetch_max(gen, Ordering::AcqRel);
    }

    /// Bytes known to be present on the host (open size or written back).
    #[must_use]
    pub fn host_valid(&self) -> u64 {
        self.host_valid.load(Ordering::Acquire).max(self.open_size)
    }

    /// Record that bytes up to `end` now exist on the host.
    pub fn mark_host_valid(&self, end: u64) {
        self.host_valid.fetch_max(end, Ordering::AcqRel);
    }

    /// The file's radix tree.
    #[must_use]
    pub fn tree(&self) -> &RadixTree {
        &self.tree
    }

    /// Record an access of `[offset, end)` and report whether it continues
    /// one of the file's tracked sequential streams (picks up exactly
    /// where that stream stopped). The *first* access of any stream —
    /// including a scan from byte 0 — reads as random and claims a slot,
    /// so its successors are recognized; this deliberately costs each
    /// stream one unwidened miss rather than ever misclassifying a random
    /// access as sequential.
    pub fn note_sequential(&self, offset: u64, end: u64) -> bool {
        for slot in &self.seq_streams {
            if slot
                .compare_exchange(offset, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
        // New stream: take a vacant slot if there is one, otherwise evict
        // a victim round-robin.
        for slot in &self.seq_streams {
            if slot
                .compare_exchange(SEQ_VACANT, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return false;
            }
        }
        let victim = self.seq_victim.fetch_add(1, Ordering::Relaxed) as usize % SEQ_STREAMS;
        self.seq_streams[victim].store(end, Ordering::Relaxed);
        false
    }

    /// Current open count.
    #[must_use]
    pub fn refcount(&self) -> i64 {
        self.refs.load(Ordering::Acquire)
    }

    /// Add an open reference (coalesced `gopen`).
    pub fn add_ref(&self) {
        self.refs.fetch_add(1, Ordering::AcqRel);
    }

    /// Drop an open reference; returns `true` if this was the last.
    pub fn drop_ref(&self) -> bool {
        self.refs.fetch_sub(1, Ordering::AcqRel) == 1
    }

    /// Re-arm a revived closed file with a single reference.
    pub fn revive(&self) {
        self.refs.store(1, Ordering::Release);
    }

    /// Enter a write-back batch (see `wb_inflight`).
    pub(crate) fn wb_begin(&self) {
        self.wb_inflight.fetch_add(1, Ordering::AcqRel);
    }

    /// Leave a write-back batch.
    pub(crate) fn wb_end(&self) {
        self.wb_inflight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Write-back batches currently in flight for this file.
    #[must_use]
    pub(crate) fn wb_inflight(&self) -> usize {
        self.wb_inflight.load(Ordering::Acquire)
    }

    /// Record a confirmed shipment at virtual time `t`.
    pub(crate) fn note_flush_horizon(&self, t: u64) {
        self.flush_horizon.fetch_max(t, Ordering::AcqRel);
    }

    /// Virtual time of the latest confirmed shipment.
    #[must_use]
    pub(crate) fn flush_horizon(&self) -> u64 {
        self.flush_horizon.load(Ordering::Acquire)
    }
}

/// A hash-sharded `Mutex<HashMap>`: one lock per shard, keys spread by
/// the std `DefaultHasher` (fixed-key SipHash — deterministic across
/// runs, so shard assignment never perturbs reproducible measurements).
/// Every operation touches exactly one shard lock, so opens of unrelated
/// files no longer serialize on one table-wide mutex.
#[derive(Debug)]
struct ShardedMap<K, V> {
    shards: Box<[Mutex<HashMap<K, V>>]>,
}

impl<K: Hash + Eq, V> ShardedMap<K, V> {
    fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard<Q: Hash + ?Sized>(&self, key: &Q) -> &Mutex<HashMap<K, V>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    fn values(&self) -> Vec<V>
    where
        V: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().values().cloned());
        }
        out
    }
}

/// The open-file table (by path) and closed-file table (by inode), each
/// hash-sharded (see `ShardedMap` above).
#[derive(Debug)]
pub struct Tables {
    open: ShardedMap<String, Arc<GFile>>,
    closed: ShardedMap<Ino, Arc<GFile>>,
    /// Path → inode hint so `gopen` can consult the closed-file table
    /// *before* any host interaction (paper §4.1: "gopen checks the
    /// closed file table first").
    closed_paths: ShardedMap<String, Ino>,
    /// Per-path serialization of open/close transitions, so concurrent
    /// `gopen`s of one file coalesce into a single host RPC (paper
    /// Table 1) without blocking opens of other files. Entries are
    /// garbage-collected by [`Tables::gc_path_lock`] once the last user
    /// drops its handle.
    path_locks: ShardedMap<String, Arc<Mutex<()>>>,
}

impl Default for Tables {
    fn default() -> Self {
        Self::with_shards(crate::config::GpufsConfig::default().cache_shards)
    }
}

impl Tables {
    /// Empty tables with the default shard count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty tables spread over `shards` locks per map.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Self {
            open: ShardedMap::new(shards),
            closed: ShardedMap::new(shards),
            closed_paths: ShardedMap::new(shards),
            path_locks: ShardedMap::new(shards),
        }
    }

    /// The serialization lock for `path`.
    #[must_use]
    pub fn path_lock(&self, path: &str) -> Arc<Mutex<()>> {
        Arc::clone(
            self.path_locks
                .shard(path)
                .lock()
                .entry(path.to_owned())
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        )
    }

    /// Drop `path`'s serialization lock if nobody holds a handle to it
    /// anymore. Open/close call this after releasing the lock; without
    /// it every path ever opened leaks a map entry for the mount's
    /// lifetime. A handle count of one means the map's own reference is
    /// the last: any concurrent `path_lock` needs the shard lock held
    /// here, so the check cannot race a new user in.
    pub fn gc_path_lock(&self, path: &str) {
        let mut locks = self.path_locks.shard(path).lock();
        if let Some(l) = locks.get(path) {
            if Arc::strong_count(l) == 1 {
                locks.remove(path);
            }
        }
    }

    /// Live `path_locks` entries (test hook for the gc above).
    #[must_use]
    pub fn path_locks_len(&self) -> usize {
        self.path_locks.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Currently open file at `path`, if any.
    #[must_use]
    pub fn get_open(&self, path: &str) -> Option<Arc<GFile>> {
        self.open.shard(path).lock().get(path).cloned()
    }

    /// Install `file` in the open table.
    pub fn insert_open(&self, file: Arc<GFile>) {
        self.open
            .shard(file.path())
            .lock()
            .insert(file.path().to_owned(), file);
    }

    /// Remove `file` from the open table if it is still the installed
    /// entry. Returns whether it was removed.
    pub fn remove_open(&self, file: &Arc<GFile>) -> bool {
        let mut open = self.open.shard(file.path()).lock();
        match open.get(file.path()) {
            Some(cur) if Arc::ptr_eq(cur, file) => {
                open.remove(file.path());
                true
            }
            _ => false,
        }
    }

    /// Take the closed-table entry for `ino`, if present.
    #[must_use]
    pub fn take_closed(&self, ino: Ino) -> Option<Arc<GFile>> {
        let taken = self.closed.shard(&ino).lock().remove(&ino);
        if let Some(f) = &taken {
            let mut paths = self.closed_paths.shard(f.path()).lock();
            if paths.get(f.path()) == Some(&ino) {
                paths.remove(f.path());
            }
        }
        taken
    }

    /// Inode hint for a parked path, if any.
    #[must_use]
    pub fn closed_ino_for_path(&self, path: &str) -> Option<Ino> {
        self.closed_paths.shard(path).lock().get(path).copied()
    }

    /// Park `file` in the closed table; returns any displaced entry
    /// (whose cache the caller must release).
    #[must_use]
    pub fn park_closed(&self, file: Arc<GFile>) -> Option<Arc<GFile>> {
        self.closed_paths
            .shard(file.path())
            .lock()
            .insert(file.path().to_owned(), file.ino());
        let ino = file.ino();
        self.closed.shard(&ino).lock().insert(ino, file)
    }

    /// Snapshot of closed files (eviction victims of first resort:
    /// "GPUfs first looks at closed files, which are not in use", §4.2).
    #[must_use]
    pub fn closed_files(&self) -> Vec<Arc<GFile>> {
        self.closed.values()
    }

    /// Snapshot of open files, read-only ones first (the eviction order
    /// after closed files).
    #[must_use]
    pub fn open_files_by_eviction_priority(&self) -> Vec<Arc<GFile>> {
        let mut files: Vec<Arc<GFile>> = self.open.values();
        files.sort_by_key(|f| f.mode().writable());
        files
    }

    /// Snapshot of every file — open or parked — whose mode syncs to the
    /// host: the background flusher's work list. `O_NOSYNC` temporaries
    /// are excluded on purpose; only eviction pressure spills those.
    #[must_use]
    pub fn syncable_files(&self) -> Vec<Arc<GFile>> {
        let mut files: Vec<Arc<GFile>> = self
            .open
            .values()
            .into_iter()
            .chain(self.closed.values())
            .filter(|f| f.mode().syncs_to_host())
            .collect();
        // A file can sit in both tables mid-transition; ship each once.
        files.sort_by_key(|f| Arc::as_ptr(f) as usize);
        files.dedup_by(|a, b| Arc::ptr_eq(a, b));
        files
    }

    /// Remove `file` from the closed table if it is still parked there.
    pub fn remove_closed(&self, file: &Arc<GFile>) -> bool {
        let ino = file.ino();
        let mut closed = self.closed.shard(&ino).lock();
        match closed.get(&ino) {
            Some(cur) if Arc::ptr_eq(cur, file) => {
                closed.remove(&ino);
                drop(closed);
                let mut paths = self.closed_paths.shard(file.path()).lock();
                if paths.get(file.path()) == Some(&ino) {
                    paths.remove(file.path());
                }
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, ino: Ino, mode: GOpenMode) -> Arc<GFile> {
        Arc::new(GFile::new(path.to_owned(), mode, 10, ino, 100, 1))
    }

    #[test]
    fn refcounting_lifecycle() {
        let f = file("/a", 1, GOpenMode::ReadOnly);
        assert_eq!(f.refcount(), 1);
        f.add_ref();
        assert!(!f.drop_ref());
        assert!(f.drop_ref(), "last reference");
        f.revive();
        assert_eq!(f.refcount(), 1);
    }

    #[test]
    fn open_table_insert_lookup_remove() {
        let t = Tables::new();
        let f = file("/a", 1, GOpenMode::ReadOnly);
        t.insert_open(Arc::clone(&f));
        assert!(t.get_open("/a").is_some());
        assert!(t.get_open("/b").is_none());
        assert!(t.remove_open(&f));
        assert!(!t.remove_open(&f), "second removal is a no-op");
    }

    #[test]
    fn remove_open_ignores_replaced_entry() {
        let t = Tables::new();
        let f1 = file("/a", 1, GOpenMode::ReadOnly);
        let f2 = file("/a", 1, GOpenMode::ReadOnly);
        t.insert_open(Arc::clone(&f1));
        t.insert_open(Arc::clone(&f2)); // replaces f1
        assert!(!t.remove_open(&f1), "f1 is no longer installed");
        assert!(t.get_open("/a").is_some());
        assert!(t.remove_open(&f2));
    }

    #[test]
    fn closed_table_park_take_displace() {
        let t = Tables::new();
        let f1 = file("/a", 7, GOpenMode::ReadOnly);
        assert!(t.park_closed(Arc::clone(&f1)).is_none());
        let f2 = file("/a", 7, GOpenMode::ReadOnly);
        let displaced = t.park_closed(Arc::clone(&f2)).expect("f1 displaced");
        assert!(Arc::ptr_eq(&displaced, &f1));
        let got = t.take_closed(7).expect("f2 parked");
        assert!(Arc::ptr_eq(&got, &f2));
        assert!(t.take_closed(7).is_none());
    }

    #[test]
    fn eviction_priority_lists_read_only_first() {
        let t = Tables::new();
        t.insert_open(file("/w", 1, GOpenMode::ReadWrite));
        t.insert_open(file("/r", 2, GOpenMode::ReadOnly));
        t.insert_open(file("/o", 3, GOpenMode::WriteOnce));
        let order = t.open_files_by_eviction_priority();
        assert_eq!(order[0].path(), "/r");
        assert!(order[1].mode().writable() && order[2].mode().writable());
    }

    #[test]
    fn path_lock_is_shared_per_path() {
        let t = Tables::new();
        let a = t.path_lock("/x");
        let b = t.path_lock("/x");
        let c = t.path_lock("/y");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn path_lock_gc_reclaims_unused_entries() {
        let t = Tables::new();
        let a = t.path_lock("/x");
        let _b = t.path_lock("/y");
        assert_eq!(t.path_locks_len(), 2);
        t.gc_path_lock("/x");
        assert_eq!(t.path_locks_len(), 2, "a live handle pins the entry");
        drop(a);
        t.gc_path_lock("/x");
        assert_eq!(
            t.path_locks_len(),
            1,
            "last handle dropped: entry reclaimed"
        );
        // A fresh request after gc mints a new lock rather than erroring.
        let _again = t.path_lock("/x");
        assert_eq!(t.path_locks_len(), 2);
    }

    #[test]
    fn sharded_tables_keep_every_entry_reachable() {
        let t = Tables::with_shards(4);
        for i in 0..64u64 {
            t.insert_open(file(&format!("/f{i}"), i, GOpenMode::ReadOnly));
        }
        for i in 0..64u64 {
            assert!(t.get_open(&format!("/f{i}")).is_some(), "/f{i} lost");
        }
        assert_eq!(t.open_files_by_eviction_priority().len(), 64);
        for i in 0..64u64 {
            let f = t.get_open(&format!("/f{i}")).unwrap();
            assert!(t.park_closed(Arc::clone(&f)).is_none());
            assert!(t.remove_open(&f));
        }
        assert_eq!(t.closed_files().len(), 64);
        for i in 0..64u64 {
            assert_eq!(t.closed_ino_for_path(&format!("/f{i}")), Some(i));
            assert!(t.take_closed(i).is_some());
        }
        assert!(t.closed_files().is_empty());
    }

    #[test]
    fn syncable_files_skips_nosync_and_dedups_tables() {
        let t = Tables::new();
        let rw = file("/rw", 1, GOpenMode::ReadWrite);
        t.insert_open(Arc::clone(&rw));
        t.insert_open(file("/tmp", 2, GOpenMode::Temp));
        t.insert_open(file("/ro", 3, GOpenMode::ReadOnly));
        // Mid-transition: the same Arc in both tables must ship once.
        assert!(t.park_closed(Arc::clone(&rw)).is_none());
        let files = t.syncable_files();
        let mut paths: Vec<&str> = files.iter().map(|f| f.path()).collect();
        paths.sort_unstable();
        assert_eq!(
            paths,
            ["/rw"],
            "temps and read-only files are not flushable"
        );
    }

    #[test]
    fn sequential_detector_follows_one_stream() {
        let f = file("/s", 1, GOpenMode::ReadOnly);
        assert!(
            !f.note_sequential(0, 100),
            "the first access — even at byte 0 — claims a stream, never widens"
        );
        assert!(f.note_sequential(100, 250), "continuation");
        assert!(
            !f.note_sequential(5000, 5100),
            "far jump starts a new stream"
        );
        assert!(f.note_sequential(250, 300), "the original stream survives");
        assert!(f.note_sequential(5100, 5200), "so does the new one");
    }

    #[test]
    fn sequential_detector_tracks_concurrent_disjoint_streams() {
        // Many threadblocks each stream their own region of one shared
        // file (the Figure 4 access pattern): after its first access,
        // every stream must be recognized as sequential.
        let f = file("/s", 1, GOpenMode::ReadOnly);
        let base = |b: u64| b * 1_000_000;
        for b in 0..16u64 {
            assert!(!f.note_sequential(base(b), base(b) + 4096));
        }
        for step in 1..4u64 {
            for b in 0..16u64 {
                assert!(
                    f.note_sequential(base(b) + step * 4096, base(b) + (step + 1) * 4096),
                    "stream {b} lost at step {step}"
                );
            }
        }
    }

    #[test]
    fn grow_and_truncate_size() {
        let f = file("/a", 1, GOpenMode::ReadWrite);
        f.grow_to(500);
        assert_eq!(f.size(), 500);
        f.grow_to(200);
        assert_eq!(f.size(), 500, "grow_to never shrinks");
        f.set_size(50);
        assert_eq!(f.size(), 50);
        assert_eq!(f.open_size(), 100, "open size is immutable");
    }
}
