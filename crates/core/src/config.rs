//! GPUfs mount configuration and open modes.

/// Access and consistency mode of one `gopen` (paper Table 1 and §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GOpenMode {
    /// `O_RDONLY`: read-only; pages are fetched on demand and never
    /// written back.
    ReadOnly,
    /// `O_RDWR`: read-write. A pristine copy of each fetched page is kept
    /// so `gfsync`/`gmsync` can diff-and-merge concurrent non-overlapping
    /// writers (paper §3.1; implemented here although the paper's
    /// prototype restricted itself to a single writer).
    ReadWrite,
    /// `O_GWRONCE`: create a write-once file. Pages are never fetched from
    /// the host; the pristine copy is implicitly all zeros, so write-back
    /// reduces to a "diff against zeros" (paper §3.1–3.2). Each byte may
    /// be written at most once; overwrites may be partially lost.
    WriteOnce,
    /// `O_NOSYNC`: a GPU-private temporary file. Data is never propagated
    /// to the host except under memory pressure, and is discarded on
    /// close.
    Temp,
}

impl GOpenMode {
    /// Whether the mode permits reads.
    #[must_use]
    pub fn readable(self) -> bool {
        !matches!(self, GOpenMode::WriteOnce)
    }

    /// Whether the mode permits writes.
    #[must_use]
    pub fn writable(self) -> bool {
        !matches!(self, GOpenMode::ReadOnly)
    }

    /// Whether pages must be fetched from the host on first access
    /// (write-once and temp files start as zeros instead).
    #[must_use]
    pub fn fetches_pages(self) -> bool {
        matches!(self, GOpenMode::ReadOnly | GOpenMode::ReadWrite)
    }

    /// Whether dirty pages ever propagate back to the host.
    #[must_use]
    pub fn syncs_to_host(self) -> bool {
        !matches!(self, GOpenMode::ReadOnly | GOpenMode::Temp)
    }

    /// Whether a pristine copy of each fetched page is needed for
    /// diff-and-merge write-back. Only full read-write sharing needs one;
    /// write-once diffs against zeros.
    #[must_use]
    pub fn needs_pristine(self) -> bool {
        matches!(self, GOpenMode::ReadWrite)
    }
}

/// Configuration of one GPU's GPUfs instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpufsConfig {
    /// Buffer-cache page size in bytes. The paper explores 16 KB–16 MB and
    /// finds 128 KB–512 KB a good balance (§5.1); the default follows.
    pub page_size: usize,
    /// Total buffer-cache capacity in bytes (the raw data array).
    pub cache_bytes: usize,
    /// How many times a buffer-cache lookup retries lock-free before
    /// falling back to the fpage lock. The paper retries once and locks on
    /// the third attempt (§4.2).
    pub lockfree_retries: u32,
    /// Disable the lock-free fast path entirely: every lookup takes the
    /// fpage lock. This exists only for the Figure 7 ablation ("locked"
    /// series) and the corresponding Criterion microbenchmark.
    pub force_locked: bool,
    /// Ablation: disable the closed-file table (paper §4.1). Closing a
    /// file discards its cached pages (dirty data is flushed first), so
    /// every reopen refetches from the host.
    pub disable_closed_table: bool,
    /// Ablation: restore POSIX close semantics (paper §3.2 argues against
    /// them): the last `gclose` synchronously writes back all dirty pages,
    /// even though the nondeterministic block scheduler may reopen the
    /// file moments later.
    pub sync_on_close: bool,
    /// Readahead window: on a page miss during *sequential* access, up to
    /// this many consecutive pages are fetched in a single batched
    /// `ReadPages` RPC (one daemon round-trip, one scatter-gather DMA
    /// charge) instead of one page per round-trip. `1` disables readahead
    /// and reproduces the paper prototype's strictly on-demand paging;
    /// random access is detected and never widened — a non-sequential
    /// `gread` batches at most the pages it itself spans, so random
    /// workloads fetch identical bytes at any window.
    pub readahead_pages: usize,
    /// Upper bound on the dirty pages of one file that `gfsync`, the
    /// stale-reopen flush, and eviction gather into a single batched
    /// `WritePages` RPC (one round-trip, one scatter-gather D2H DMA
    /// charge). `1` reproduces the original one-RPC-per-page write-back.
    /// Unlike readahead, batching never changes *which* bytes are written
    /// — only how many round-trips carry them — so it defaults on.
    /// Under the *serialized* daemon engine ([`GpufsConfig::io_chunk_pages`]
    /// `= 0`) batches are additionally capped at 4 MB of page span — the
    /// measured optimum there; the pipelined default overlaps each
    /// chunk's gather with the previous chunk's `pwrite`s, so the span
    /// cap relaxes and this page count is the binding limit (see
    /// `cache/writeback.rs`).
    pub write_batch_pages: usize,
    /// Chunk size, in buffer-cache pages, of the daemon's pipelined I/O
    /// engine. A batched `ReadPages`/`WritePages` RPC is streamed through
    /// the daemon in chunks of this many pages so the host file I/O of
    /// chunk *k+1* overlaps the DMA of chunk *k* (reads: pread ahead of
    /// the in-flight scatter DMA; writes: D2H gather ahead of the
    /// in-flight `pwrite`s). The whole batch stays one scatter-gather DMA
    /// transaction — setup is paid once, on the first chunk; each extra
    /// chunk costs only a cheap CPU-side submit
    /// ([`simtime::Timings::dma_chunk_ns`]).
    ///
    /// `0` (or any value at least the batch width) disables the pipeline
    /// and reproduces the serialized engine exactly: all preads, then one
    /// DMA (and the inverse for writes). Host-side state like
    /// [`GpufsConfig::daemon_workers`]: consumed by
    /// [`crate::GpufsHost::with_config`] and validated at `mount`.
    pub io_chunk_pages: usize,
    /// Independent RPC channels between this GPU and the host daemon
    /// (paper §4.3: "multiple asynchronous CPU-GPU channels"). Each
    /// threadblock slot posts to `slot % rpc_channels`, so independent
    /// blocks queue independently. `1` is the original single FIFO.
    /// Host-side state: consumed by [`crate::GpufsHost::with_config`],
    /// and `mount` rejects a config whose value disagrees with the
    /// daemon it is mounted on (never a silent no-op).
    pub rpc_channels: usize,
    /// Threads in the host daemon's worker pool serving those channels
    /// (paper §4.3: a multi-threaded daemon overlapping host file I/O
    /// with DMA). `1` is the original single-threaded event loop.
    /// Host-side state, validated at `mount` like
    /// [`GpufsConfig::rpc_channels`].
    pub daemon_workers: usize,
    /// Staging depth, in chunks, of the daemon's pipelined read engine.
    /// `2` (the default) is classic double-buffering and reproduces the
    /// prior engine bit-for-bit: the `ReadPages` response is returned
    /// only once the *last* chunk's DMA has landed, so every page of the
    /// batch becomes ready at the response time. Depths ≥ 3 let up to
    /// `io_depth - 2` trailing chunk DMAs outlive the response: the RPC
    /// returns as soon as the staging window allows, and the response
    /// carries a *per-page* ready time (its own chunk's DMA completion)
    /// so prefetched pages become pinnable individually while later
    /// chunks are still in flight. Host-side state, validated at `mount`
    /// like [`GpufsConfig::rpc_channels`]; clamped to ≥ 2.
    pub io_depth: usize,
    /// Shard count of the buffer-cache control plane: the frame freelist,
    /// the radix node arena/leaf registry, and the open/closed/path-lock
    /// file tables each split into this many independently locked shards
    /// (frames are keyed by the faulting threadblock, tables by key hash)
    /// so concurrent misses on different shards never contend on one
    /// `Mutex`. `1` reproduces the original single-freelist layout; frame
    /// allocation steals from sibling shards on local exhaustion, so
    /// capacity semantics are shard-count-independent. Client-side only —
    /// not validated against the host daemon.
    pub cache_shards: usize,
    /// High watermark, in dirty pages, of the asynchronous write-back
    /// throttle. `0` (the default) disables the background flusher
    /// entirely: write-back happens synchronously at `gfsync`/eviction
    /// exactly as before. When > 0, each mount runs a flusher thread that
    /// gathers dirty pages into the batched `WritePages` path while
    /// foreground faults proceed; a writer that would push the mount's
    /// dirty-page count to `dirty_high_pages` or beyond blocks until the
    /// flusher drains it back to [`GpufsConfig::dirty_low_pages`].
    pub dirty_high_pages: usize,
    /// Low watermark of the async write-back throttle: once engaged, the
    /// flusher drains the mount's dirty-page count below this level
    /// before throttled writers resume. Meaningful only when
    /// [`GpufsConfig::dirty_high_pages`] > 0; clamped below it.
    pub dirty_low_pages: usize,
    /// Weighted deficit-round-robin service weights per tenant, indexed by
    /// [`crate::rpc::TenantId`]. Empty (the default) keeps the fair
    /// round-robin channel scan of the original hub bit-for-bit; a
    /// non-empty vector makes the daemon's dispatcher serve tenant queues
    /// in proportion to these weights (a weight-0 tenant is clamped to 1).
    /// Host-side state: consumed by [`crate::GpufsHost::with_config`] and
    /// validated at `mount` like [`GpufsConfig::rpc_channels`].
    pub tenant_weights: Vec<u32>,
    /// Per-tenant admission caps: the most RPCs one tenant may have
    /// posted-but-unanswered at once. `0` for a tenant means unlimited;
    /// empty (the default) disables admission control entirely. A caller
    /// over its cap spins-then-sleeps (`backoff.rs`) until a slot frees.
    /// Host-side state, validated at `mount` like
    /// [`GpufsConfig::rpc_channels`].
    pub tenant_admission: Vec<usize>,
    /// Per-tenant buffer-cache frame quotas, in pages. Soft quotas with
    /// steal-when-idle: allocation is never refused while free frames
    /// exist, but reclaim under pressure prefers the frames of over-quota
    /// tenants (the caller's own first), so a hot tenant evicts its own
    /// pages before anyone else's. Empty (the default) disables
    /// partitioning. Client-side state, like [`GpufsConfig::cache_shards`].
    pub tenant_frame_quotas: Vec<usize>,
}

impl Default for GpufsConfig {
    fn default() -> Self {
        Self {
            page_size: 256 << 10,
            cache_bytes: 1 << 30,
            lockfree_retries: 1,
            force_locked: false,
            disable_closed_table: false,
            sync_on_close: false,
            readahead_pages: 1,
            write_batch_pages: 32,
            io_chunk_pages: 2,
            rpc_channels: 1,
            daemon_workers: 1,
            io_depth: 2,
            cache_shards: 8,
            dirty_high_pages: 0,
            dirty_low_pages: 0,
            tenant_weights: Vec::new(),
            tenant_admission: Vec::new(),
            tenant_frame_quotas: Vec::new(),
        }
    }
}

impl GpufsConfig {
    /// A configuration with the given page size and cache capacity.
    ///
    /// # Panics
    ///
    /// Panics unless `page_size` is a positive power of two no larger
    /// than `cache_bytes`.
    #[must_use]
    pub fn new(page_size: usize, cache_bytes: usize) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            page_size <= cache_bytes,
            "cache must hold at least one page"
        );
        Self {
            page_size,
            cache_bytes,
            ..Self::default()
        }
    }

    /// Number of page frames in the raw data array.
    #[must_use]
    pub fn num_frames(&self) -> usize {
        self.cache_bytes / self.page_size
    }

    /// Copy with the readahead window set to `pages` (clamped to ≥ 1).
    #[must_use]
    pub fn with_readahead(self, pages: usize) -> Self {
        Self {
            readahead_pages: pages.max(1),
            ..self
        }
    }

    /// Copy with the write-back batch cap set to `pages` (clamped to ≥ 1;
    /// `1` = the original per-page write-back RPCs).
    #[must_use]
    pub fn with_write_batch(self, pages: usize) -> Self {
        Self {
            write_batch_pages: pages.max(1),
            ..self
        }
    }

    /// Copy with the daemon's pipelined-I/O chunk size set to `pages`
    /// (`0` = the serialized engine: all file I/O of a batch, then one
    /// DMA).
    #[must_use]
    pub fn with_io_chunk(self, pages: usize) -> Self {
        Self {
            io_chunk_pages: pages,
            ..self
        }
    }

    /// Copy with the host-side concurrency knobs set: `channels`
    /// independent RPC channels served by `workers` daemon threads (both
    /// clamped to ≥ 1; `1, 1` = the original single FIFO and
    /// single-threaded event loop).
    #[must_use]
    pub fn with_concurrency(self, channels: usize, workers: usize) -> Self {
        Self {
            rpc_channels: channels.max(1),
            daemon_workers: workers.max(1),
            ..self
        }
    }

    /// Copy with the daemon's read-staging depth set to `chunks` (clamped
    /// to ≥ 2; `2` = classic double-buffering, the bit-for-bit compat
    /// setting).
    #[must_use]
    pub fn with_io_depth(self, chunks: usize) -> Self {
        Self {
            io_depth: chunks.max(2),
            ..self
        }
    }

    /// Copy with the cache control-plane shard count set to `shards`
    /// (clamped to ≥ 1; `1` = the original unsharded layout).
    #[must_use]
    pub fn with_cache_shards(self, shards: usize) -> Self {
        Self {
            cache_shards: shards.max(1),
            ..self
        }
    }

    /// Copy with asynchronous write-back enabled behind a `high`/`low`
    /// dirty-page watermark pair (`high = 0` disables the flusher; `low`
    /// is clamped below `high` when the flusher is on).
    #[must_use]
    pub fn with_async_writeback(self, high: usize, low: usize) -> Self {
        Self {
            dirty_high_pages: high,
            dirty_low_pages: if high == 0 { low } else { low.min(high - 1) },
            ..self
        }
    }

    /// Copy with weighted deficit-round-robin dispatch enabled for
    /// `weights.len()` tenants (empty = the original fair scan).
    #[must_use]
    pub fn with_tenant_weights(self, weights: Vec<u32>) -> Self {
        Self {
            tenant_weights: weights,
            ..self
        }
    }

    /// Copy with per-tenant admission caps (`0` = unlimited for that
    /// tenant; empty = no admission control).
    #[must_use]
    pub fn with_tenant_admission(self, caps: Vec<usize>) -> Self {
        Self {
            tenant_admission: caps,
            ..self
        }
    }

    /// Copy with per-tenant soft frame quotas, in pages (empty = no
    /// cache partitioning).
    #[must_use]
    pub fn with_tenant_quotas(self, quotas: Vec<usize>) -> Self {
        Self {
            tenant_frame_quotas: quotas,
            ..self
        }
    }

    /// Number of tenant classes this configuration distinguishes: the
    /// widest of the three tenant vectors, and at least 1 (the
    /// single-tenant default).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.tenant_weights
            .len()
            .max(self.tenant_admission.len())
            .max(self.tenant_frame_quotas.len())
            .max(1)
    }

    /// A small configuration for unit tests: 4 KB pages, 16 frames.
    #[must_use]
    pub fn small_test() -> Self {
        Self::new(4 << 10, 64 << 10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_capabilities_match_paper_semantics() {
        assert!(GOpenMode::ReadOnly.readable() && !GOpenMode::ReadOnly.writable());
        assert!(!GOpenMode::ReadOnly.syncs_to_host());
        assert!(GOpenMode::ReadWrite.readable() && GOpenMode::ReadWrite.writable());
        assert!(GOpenMode::ReadWrite.needs_pristine());
        assert!(!GOpenMode::WriteOnce.readable() && GOpenMode::WriteOnce.writable());
        assert!(!GOpenMode::WriteOnce.fetches_pages());
        assert!(GOpenMode::WriteOnce.syncs_to_host());
        assert!(
            !GOpenMode::WriteOnce.needs_pristine(),
            "wronce diffs against zeros"
        );
        assert!(!GOpenMode::Temp.syncs_to_host());
    }

    #[test]
    fn config_frame_count() {
        let c = GpufsConfig::new(4096, 64 * 4096);
        assert_eq!(c.num_frames(), 64);
    }

    #[test]
    fn readahead_defaults_off_and_clamps() {
        assert_eq!(GpufsConfig::default().readahead_pages, 1);
        assert_eq!(
            GpufsConfig::small_test().with_readahead(8).readahead_pages,
            8
        );
        assert_eq!(
            GpufsConfig::small_test().with_readahead(0).readahead_pages,
            1
        );
    }

    #[test]
    fn concurrency_defaults_to_paper_prototype_and_clamps() {
        let c = GpufsConfig::default();
        assert_eq!(c.rpc_channels, 1, "single FIFO by default");
        assert_eq!(c.daemon_workers, 1, "single-threaded daemon by default");
        assert!(c.write_batch_pages > 1, "bulk write-back defaults on");
        let c = GpufsConfig::small_test().with_concurrency(0, 0);
        assert_eq!((c.rpc_channels, c.daemon_workers), (1, 1));
        let c = GpufsConfig::small_test().with_concurrency(4, 3);
        assert_eq!((c.rpc_channels, c.daemon_workers), (4, 3));
        assert_eq!(
            GpufsConfig::small_test()
                .with_write_batch(0)
                .write_batch_pages,
            1
        );
        assert_eq!(
            GpufsConfig::small_test()
                .with_write_batch(8)
                .write_batch_pages,
            8
        );
    }

    #[test]
    fn io_chunk_defaults_to_pipelined_and_zero_means_serialized() {
        assert!(
            GpufsConfig::default().io_chunk_pages > 0,
            "the pipelined engine defaults on"
        );
        assert_eq!(
            GpufsConfig::small_test().with_io_chunk(0).io_chunk_pages,
            0,
            "0 is the serialized-compat setting, never clamped away"
        );
        assert_eq!(GpufsConfig::small_test().with_io_chunk(7).io_chunk_pages, 7);
    }

    #[test]
    fn io_depth_defaults_to_double_buffering_and_clamps() {
        assert_eq!(
            GpufsConfig::default().io_depth,
            2,
            "double-buffering (the prior engine) by default"
        );
        assert_eq!(GpufsConfig::small_test().with_io_depth(0).io_depth, 2);
        assert_eq!(GpufsConfig::small_test().with_io_depth(5).io_depth, 5);
    }

    #[test]
    fn cache_shards_default_on_and_clamp() {
        assert!(
            GpufsConfig::default().cache_shards > 1,
            "sharding defaults on"
        );
        assert_eq!(
            GpufsConfig::small_test().with_cache_shards(0).cache_shards,
            1
        );
        assert_eq!(
            GpufsConfig::small_test().with_cache_shards(4).cache_shards,
            4
        );
    }

    #[test]
    fn async_writeback_defaults_off_and_watermarks_order() {
        let c = GpufsConfig::default();
        assert_eq!((c.dirty_high_pages, c.dirty_low_pages), (0, 0));
        let c = GpufsConfig::small_test().with_async_writeback(8, 2);
        assert_eq!((c.dirty_high_pages, c.dirty_low_pages), (8, 2));
        let c = GpufsConfig::small_test().with_async_writeback(8, 99);
        assert_eq!(c.dirty_low_pages, 7, "low clamps below high");
        let c = GpufsConfig::small_test().with_async_writeback(0, 5);
        assert_eq!(c.dirty_high_pages, 0, "0 high = flusher off");
    }

    #[test]
    fn tenant_knobs_default_off_and_count_tenants() {
        let c = GpufsConfig::default();
        assert!(c.tenant_weights.is_empty(), "fair scan by default");
        assert!(c.tenant_admission.is_empty(), "no admission control");
        assert!(c.tenant_frame_quotas.is_empty(), "no cache partitioning");
        assert_eq!(c.num_tenants(), 1, "single-tenant default");
        let c = GpufsConfig::small_test()
            .with_tenant_weights(vec![3, 1])
            .with_tenant_admission(vec![0, 4, 2])
            .with_tenant_quotas(vec![8]);
        assert_eq!(c.num_tenants(), 3, "widest tenant vector wins");
        assert_eq!(c.tenant_weights, vec![3, 1]);
        assert_eq!(c.tenant_admission, vec![0, 4, 2]);
        assert_eq!(c.tenant_frame_quotas, vec![8]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_page_panics() {
        let _ = GpufsConfig::new(3000, 1 << 20);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn cache_smaller_than_page_panics() {
        let _ = GpufsConfig::new(1 << 20, 1 << 10);
    }
}
