//! # GPUfs: a file system API for GPU kernels
//!
//! Rust reproduction of *GPUfs: Integrating a File System with GPUs*
//! (Silberstein, Ford, Keidar, Witchel — ASPLOS 2013).
//!
//! GPUfs lets data-parallel GPU code open, read, write, map, and
//! synchronize host files directly from a running kernel, with a
//! GPU-resident buffer cache, a weak locality-optimized consistency
//! model, and a GPU-to-CPU RPC protocol served by a host daemon.
//!
//! ## Layers (paper Figure 2)
//!
//! The crate is organized module-per-layer (see ARCHITECTURE.md for the
//! full map):
//!
//! * **GPU-side library** — [`GpuFsMount`] (composition glue) and the
//!   `g*` calls ([`GpuFsMount::open`], [`GpuFsMount::read`],
//!   [`GpuFsMount::write`], [`GpuFsMount::mmap`], [`GpuFsMount::fsync`],
//!   ...), the open/closed file tables, and the buffer cache in
//!   [`cache`] — paging (with batched multi-page readahead RPCs on
//!   sequential access), reclaim, and diff-based bulk write-back
//!   (batched multi-page `WritePages` RPCs, the write-side mirror).
//! * **Communication layer** — the RPC hub in [`rpc`] (N independent
//!   write-shared request channels, GPU as client) served by the host
//!   daemon's dispatcher + worker pool in the [`GpufsHost`]
//!   (`GpufsConfig::rpc_channels` / `daemon_workers`; `1/1` is the paper
//!   prototype's single FIFO and single-threaded event loop), whose
//!   staged I/O engine streams each batched RPC in chunks so host file
//!   I/O overlaps the in-flight DMA (`GpufsConfig::io_chunk_pages`; `0`
//!   is the serialized engine).
//! * **Consistency layer** — generation-based lazy invalidation against
//!   the WRAPFS-like registry in [`hostfs`].
//! * **Cluster layer** — [`cluster`]: a [`GpuFleet`] of N mounts over
//!   one shared host FS and registry (the paper's §6 multi-GPU
//!   experiments), with a work-distribution scheduler ([`WorkQueue`]:
//!   static sharding or work stealing) and fleet-level close-to-open
//!   auditing/stress machinery.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use gpusim::{Gpu, GpuSpec, Grid};
//! use hostfs::{HostFs, HostFsConfig};
//! use gpufs::{GOpenMode, GpufsConfig, GpufsHost};
//!
//! // Host setup: file system, one GPU, the GPUfs daemon, one mount.
//! let fs = Arc::new(HostFs::new(HostFsConfig::default()));
//! fs.create("/input", b"hello from the host").unwrap();
//! let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
//! let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
//! let mount = host.mount(0, GpufsConfig::small_test()).unwrap();
//!
//! // A self-contained GPU kernel reads the file — no CPU-side
//! // application code beyond the launch itself.
//! gpu.launch(Grid::new(1, 32), 0, |blk| {
//!     let fd = mount.open(blk, "/input", GOpenMode::ReadOnly).unwrap();
//!     let mut buf = [0u8; 32];
//!     let n = mount.read(blk, &fd, 0, &mut buf).unwrap();
//!     assert_eq!(&buf[..n], b"hello from the host");
//!     mount.close(blk, fd).unwrap();
//! });
//! ```

mod api;
mod backoff;
pub mod cache;
pub mod cluster;
mod config;
mod daemon;
mod error;
mod mount;
mod ofile;
pub mod remote;
pub mod rpc;
mod table;
#[cfg(test)]
pub(crate) mod testrig;

pub use api::{GFd, GMap, GStat};
pub use cluster::{
    CoherenceOp, DaemonTopology, FileCoherence, FleetBuilder, FleetView, GpuFleet, HostFleet,
    HostFleetBuilder, ScheduleReport, ShardStrategy, WorkItem, WorkQueue,
};
pub use config::{GOpenMode, GpufsConfig};
pub use daemon::{DaemonStats, GpufsHost};
pub use error::{GpufsError, GpufsResult};
pub use mount::GpuFsMount;
pub use remote::{HostCacheStats, HostPageCache, HostProxy, ServerStats, StorageServer, WireStats};
pub use table::{GFile, Tables};
