//! The CPU-side GPUfs daemon (paper §4, "communication layer").
//!
//! A single user-level thread in the host application polls the RPC queue
//! and serves file requests against the host file system, initiating DMA
//! transfers directly to or from GPU buffer-cache pages. The event loop is
//! deliberately single-threaded — the paper restricts GPU-related CPU load
//! to one core and avoids overwhelming the disk with concurrent requests —
//! but bulk data transfers are asynchronous: the daemon's virtual clock
//! advances only through request dispatch and host file I/O, while DMA
//! completion is awaited by the requesting threadblock, giving the
//! pread/DMA pipelining of Figure 4.

use std::sync::Arc;
use std::thread::JoinHandle;

use gpusim::Gpu;
use hostfs::{FsError, HostFs, OpenFlags};
use simtime::{Clock, Counter, Nanos};

use crate::rpc::{Request, RespOk, RpcHub};

/// Activity counters of the host daemon.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// RPC requests served.
    pub requests: Counter,
    /// Bytes moved host→device.
    pub bytes_h2d: Counter,
    /// Bytes moved device→host.
    pub bytes_d2h: Counter,
    /// Open requests forwarded to the host FS.
    pub opens: Counter,
    /// `ReadPages` requests that carried more than one page (the batches
    /// readahead produces; a plain miss is a batch of one and not counted).
    pub batched_rpcs: Counter,
    /// Total pages carried by those multi-page requests. Divide by
    /// [`DaemonStats::batched_rpcs`] for the mean batch width.
    pub pages_per_rpc: Counter,
}

/// The GPUfs host side: file system, GPUs, RPC hub, and the daemon thread.
///
/// Constructing a `GpufsHost` starts the daemon; dropping it shuts the
/// daemon down after draining outstanding requests.
#[derive(Debug)]
pub struct GpufsHost {
    fs: Arc<HostFs>,
    gpus: Vec<Arc<Gpu>>,
    hub: Arc<RpcHub>,
    stats: Arc<DaemonStats>,
    daemon: Option<JoinHandle<()>>,
}

impl GpufsHost {
    /// Start the host daemon serving `gpus` against `fs`.
    #[must_use]
    pub fn new(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>) -> Self {
        let hub = Arc::new(RpcHub::new());
        let stats = Arc::new(DaemonStats::default());
        let daemon = {
            let fs = Arc::clone(&fs);
            let gpus = gpus.clone();
            let hub = Arc::clone(&hub);
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("gpufs-daemon".to_owned())
                .spawn(move || daemon_loop(&fs, &gpus, &hub, &stats))
                .expect("spawn gpufs daemon")
        };
        Self {
            fs,
            gpus,
            hub,
            stats,
            daemon: Some(daemon),
        }
    }

    /// The host file system.
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        &self.fs
    }

    /// The GPUs served by this daemon.
    #[must_use]
    pub fn gpus(&self) -> &[Arc<Gpu>] {
        &self.gpus
    }

    /// The RPC hub (used by mounts to issue calls).
    #[must_use]
    pub fn hub(&self) -> &Arc<RpcHub> {
        &self.hub
    }

    /// Daemon activity counters.
    #[must_use]
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Stop the daemon, draining queued requests first. Idempotent.
    pub fn shutdown(&mut self) {
        self.hub.close();
        if let Some(handle) = self.daemon.take() {
            handle.join().expect("gpufs daemon panicked");
        }
    }
}

impl Drop for GpufsHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn daemon_loop(fs: &HostFs, gpus: &[Arc<Gpu>], hub: &RpcHub, stats: &DaemonStats) {
    let timings = fs.timings().clone();
    while let Some(env) = hub.next() {
        stats.requests.incr();
        // Each request is timed from its own issue point: poll-notice
        // latency plus dispatch, then the host file system and DMA
        // engines — which carry all the real serialization (disk head,
        // PCIe direction). The daemon's own event loop is orders of
        // magnitude faster than either and is not modeled as a shared
        // bottleneck (requests drain in real FIFO order regardless).
        let mut clock = Clock::starting_at(env.issue + timings.rpc_poll_ns);
        clock.advance(timings.rpc_dispatch_ns);
        let (result, end) = serve(fs, gpus, stats, &mut clock, env.gpu, &env.req);
        // Sends fail only if the caller vanished (e.g. a panicking test
        // threadblock); the daemon itself must keep serving others.
        let _ = env.tx.send((result, end));
    }
}

/// Serve one request. Returns the response and the virtual time at which
/// the requester may proceed (which, for reads and writes, includes DMA
/// the daemon itself does not wait for).
fn serve(
    fs: &HostFs,
    gpus: &[Arc<Gpu>],
    stats: &DaemonStats,
    clock: &mut Clock,
    _gpu: usize,
    req: &Request,
) -> (Result<RespOk, FsError>, Nanos) {
    let now = clock.now();
    match req {
        Request::Open {
            path,
            write,
            create,
            truncate,
        } => {
            stats.opens.incr();
            let flags = OpenFlags {
                read: true,
                write: *write,
                create: *create,
                truncate: *truncate,
            };
            match fs.open(path, flags, now) {
                Ok((fd, t)) => {
                    clock.wait_until(t);
                    let meta = fs.fstat(fd).expect("fresh fd");
                    let generation = fs.consistency().generation(meta.ino);
                    (
                        Ok(RespOk::Opened {
                            fd,
                            ino: meta.ino,
                            size: meta.size,
                            generation,
                        }),
                        clock.now(),
                    )
                }
                Err(e) => (Err(e), clock.now()),
            }
        }
        Request::Close { fd } => {
            let r = fs.close(*fd).map(|()| RespOk::Done);
            (r, clock.now())
        }
        Request::ReadPages { fd, pages, gpu } => {
            if pages.len() > 1 {
                stats.batched_rpcs.incr();
                stats.pages_per_rpc.add(pages.len() as u64);
            }
            // The daemon preads every page of the batch (the host file
            // system pipelines/serializes these as its cost model says),
            // then ships all of them with one scatter-gather DMA charge.
            let mut staging: Vec<Vec<u8>> = Vec::with_capacity(pages.len());
            let mut ns = Vec::with_capacity(pages.len());
            for page in pages {
                let mut buf = vec![0u8; page.len];
                match fs.pread(*fd, page.offset, &mut buf, clock.now()) {
                    Ok((n, t)) => {
                        clock.wait_until(t);
                        buf.truncate(n);
                        ns.push(n);
                        staging.push(buf);
                    }
                    Err(e) => return (Err(e), clock.now()),
                }
            }
            let parts: Vec<(&[u8], _)> = staging
                .iter()
                .zip(pages)
                .filter(|(buf, _)| !buf.is_empty())
                .map(|(buf, page)| (buf.as_slice(), page.dst))
                .collect();
            let mut end = clock.now();
            if !parts.is_empty() {
                // Async DMA: charge the GPU's h2d engine from the last
                // pread completion; the daemon moves on.
                let r = gpus[*gpu].dma_h2d_scattered(&parts, clock.now());
                stats
                    .bytes_h2d
                    .add(parts.iter().map(|(b, _)| b.len() as u64).sum());
                end = r.end;
            }
            (Ok(RespOk::Read { ns }), end)
        }
        Request::WriteExtents {
            fd,
            src,
            page_offset,
            extents,
            gpu,
        } => {
            if extents.is_empty() {
                let ino = fs.fstat(*fd).map(|m| m.ino).unwrap_or_default();
                let generation = fs.consistency().generation(ino);
                return (Ok(RespOk::Wrote { n: 0, generation }), clock.now());
            }
            // One DMA covers the span of all modified extents; then each
            // extent is written to the host file.
            let span_start = extents.iter().map(|&(o, _)| o).min().unwrap_or(0) as usize;
            let span_end = extents
                .iter()
                .map(|&(o, l)| o as usize + l as usize)
                .max()
                .unwrap_or(0);
            let mut staging = vec![0u8; span_end - span_start];
            let r = gpus[*gpu].dma_d2h(*src + span_start, &mut staging, now);
            stats.bytes_d2h.add(staging.len() as u64);
            clock.wait_until(r.end);
            let mut written = 0usize;
            for &(off, len) in extents {
                let buf_off = off as usize - span_start;
                let data = &staging[buf_off..buf_off + len as usize];
                match fs.pwrite(*fd, page_offset + u64::from(off), data, clock.now()) {
                    Ok((n, t)) => {
                        clock.wait_until(t);
                        written += n;
                    }
                    Err(e) => return (Err(e), clock.now()),
                }
            }
            let ino = fs.fstat(*fd).map(|m| m.ino).unwrap_or_default();
            let generation = fs.consistency().generation(ino);
            (
                Ok(RespOk::Wrote {
                    n: written,
                    generation,
                }),
                clock.now(),
            )
        }
        Request::Fsync { fd } => match fs.fsync(*fd, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Unlink { path } => match fs.unlink(path, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Truncate { fd, size } => match fs.ftruncate(*fd, *size, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Stat { path } => {
            let r = fs.stat(path).map(|m| RespOk::Stat {
                ino: m.ino,
                size: m.size,
                writable: m.writable,
                generation: fs.consistency().generation(m.ino),
            });
            (r, clock.now())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::PageRead;
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;
    use simtime::Timings;

    fn host() -> GpufsHost {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        GpufsHost::new(fs, vec![gpu])
    }

    fn call(h: &GpufsHost, req: Request) -> crate::error::GpufsResult<(RespOk, Nanos)> {
        h.hub().call(0, 0, &Timings::default(), req)
    }

    #[test]
    fn open_read_close_via_rpc() {
        let h = host();
        h.fs().create("/f", b"hello world").unwrap();
        let (ok, t_open) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, size, .. } = ok else {
            panic!("expected Opened")
        };
        assert_eq!(size, 11);
        assert!(t_open > 0);

        let dst = h.gpus()[0].global().alloc(4096).unwrap();
        let (ok, t_read) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 0,
                    len: 4096,
                    dst,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Read { ns } = ok else {
            panic!("expected Read")
        };
        assert_eq!(ns, vec![11]);
        assert!(t_read > t_open, "read completion includes pread + DMA");
        let mut out = vec![0u8; 11];
        h.gpus()[0].global().read(dst, &mut out);
        assert_eq!(&out, b"hello world");

        let (ok, _) = call(&h, Request::Close { fd }).unwrap();
        assert!(matches!(ok, RespOk::Done));
    }

    #[test]
    fn write_extents_touch_only_modified_bytes() {
        let h = host();
        h.fs().create("/f", &[0xaau8; 64]).unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: true,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        let src = h.gpus()[0].global().alloc(64).unwrap();
        h.gpus()[0].global().write(src, &[0x55u8; 64]);
        // Diff says only bytes [8,12) and [40,44) changed.
        let (ok, _) = call(
            &h,
            Request::WriteExtents {
                fd,
                src,
                page_offset: 0,
                extents: vec![(8, 4), (40, 4)],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Wrote { n, .. } = ok else {
            panic!()
        };
        assert_eq!(n, 8);
        let (data, _) = h.fs().read_whole("/f", 0).unwrap();
        assert_eq!(&data[..8], &[0xaa; 8], "unmodified prefix preserved");
        assert_eq!(&data[8..12], &[0x55; 4]);
        assert_eq!(
            &data[12..40],
            &[0xaa; 28],
            "bytes between extents preserved"
        );
        assert_eq!(&data[40..44], &[0x55; 4]);
    }

    #[test]
    fn errors_propagate() {
        let h = host();
        let err = call(
            &h,
            Request::Open {
                path: "/missing".into(),
                write: false,
                create: false,
                truncate: false,
            },
        );
        assert!(matches!(
            err,
            Err(crate::error::GpufsError::Host(FsError::NotFound(_)))
        ));
    }

    #[test]
    fn stat_and_unlink() {
        let h = host();
        h.fs().create("/s", &[1u8; 100]).unwrap();
        let (ok, _) = call(&h, Request::Stat { path: "/s".into() }).unwrap();
        let RespOk::Stat { size, .. } = ok else {
            panic!()
        };
        assert_eq!(size, 100);
        call(&h, Request::Unlink { path: "/s".into() }).unwrap();
        assert!(!h.fs().exists("/s"));
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_later_calls() {
        let mut h = host();
        h.shutdown();
        h.shutdown();
        let err = call(&h, Request::Stat { path: "/".into() });
        assert!(matches!(err, Err(crate::error::GpufsError::DaemonStopped)));
    }

    #[test]
    fn daemon_serializes_but_overlaps_dma() {
        // Two reads: the daemon's pread of the second should overlap the
        // first's DMA (second completion < strictly-serial sum).
        let h = host();
        h.fs().create_synthetic("/big", 8 << 20, 3).unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/big".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        let a = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let b = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let (_, t1) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 0,
                    len: 1 << 20,
                    dst: a,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let (_, t2) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 1 << 20,
                    len: 1 << 20,
                    dst: b,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let pread_and_dma = t1; // first request end-to-end
        assert!(
            t2 < 2 * pread_and_dma,
            "second read ({t2}) should overlap with first ({pread_and_dma})"
        );
    }

    #[test]
    fn batched_read_beats_singletons_and_counts_pages() {
        // The same four pages as one batch vs four singleton requests: the
        // batch must be strictly faster (one RPC round-trip, one DMA
        // setup) and must land in the batch counters.
        let h = host();
        h.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let open = |h: &GpufsHost| {
            let (ok, _) = call(
                h,
                Request::Open {
                    path: "/batch".into(),
                    write: false,
                    create: false,
                    truncate: false,
                },
            )
            .unwrap();
            let RespOk::Opened { fd, .. } = ok else {
                panic!()
            };
            fd
        };
        let fd = open(&h);
        let page = 64 << 10;
        let dst = h.gpus()[0].global().alloc(4 * page).unwrap();
        let pages: Vec<PageRead> = (0..4)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ok, t_batch) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: pages.clone(),
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Read { ns } = ok else { panic!() };
        assert_eq!(ns, vec![page; 4]);
        assert_eq!(h.stats().batched_rpcs.get(), 1);
        assert_eq!(h.stats().pages_per_rpc.get(), 4);
        assert_eq!(h.stats().bytes_h2d.get(), 4 * page as u64);

        // Singleton baseline on a fresh rig (fresh DMA queue and clocks).
        let h2 = host();
        h2.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let fd2 = open(&h2);
        let dst2 = h2.gpus()[0].global().alloc(4 * page).unwrap();
        let mut t_serial = 0;
        let mut issue = 0;
        for i in 0..4 {
            let (_, t) = h2
                .hub()
                .call(
                    0,
                    issue,
                    &Timings::default(),
                    Request::ReadPages {
                        fd: fd2,
                        pages: vec![PageRead {
                            offset: (i * page) as u64,
                            len: page,
                            dst: dst2 + i * page,
                        }],
                        gpu: 0,
                    },
                )
                .unwrap();
            issue = t;
            t_serial = t;
        }
        assert_eq!(
            h2.stats().batched_rpcs.get(),
            0,
            "singletons are not batches"
        );
        assert!(
            t_batch < t_serial,
            "batch ({t_batch}) must beat synchronous singletons ({t_serial})"
        );
        // Bytes land identically either way.
        let mut a = vec![0u8; 4 * page];
        let mut b = vec![0u8; 4 * page];
        h.gpus()[0].global().read(dst, &mut a);
        h2.gpus()[0].global().read(dst2, &mut b);
        assert_eq!(a, b);
    }
}
