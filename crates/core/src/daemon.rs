//! The CPU-side GPUfs daemon (paper §4, "communication layer").
//!
//! A pool of user-level threads in the host application polls the RPC
//! channels and serves file requests against the host file system,
//! initiating DMA transfers directly to or from GPU buffer-cache pages.
//! The paper's daemon is multi-threaded so that one worker's host file
//! I/O overlaps another's DMA (the pipelining of Figure 5); the pool
//! defaults to a single worker — the paper restricts GPU-related CPU
//! load to one core — and scales with
//! [`crate::GpufsConfig::daemon_workers`]. Dispatch is the fair channel
//! scan in `RpcHub::next`: workers park on one condvar and each claim
//! serves exactly one request.
//!
//! Bulk data transfers are asynchronous on reads: the virtual clock of a
//! request advances through dispatch and host file I/O, while H2D DMA
//! completion is awaited by the requesting threadblock, giving the
//! pread/DMA pipelining of Figure 4. Write-back gathers are the inverse:
//! the D2H DMA must complete before the host `pwrite`s can run.
//! Contention between concurrently served requests is arbitrated by the
//! shared `simtime` resources underneath — the host file system's
//! disk/page-cache devices and the per-direction PCIe
//! [`simtime::BandwidthResource`]s — not by the real thread count, so
//! virtual results are reproducible at any pool size.

use std::sync::Arc;
use std::thread::JoinHandle;

use gpusim::{DevPtr, Gpu};
use hostfs::{FsError, HostFs, OpenFlags};
use simtime::{Clock, Counter, Nanos};

use crate::config::GpufsConfig;
use crate::rpc::{Request, RespOk, RpcHub};

/// Activity counters of the host daemon.
#[derive(Debug, Default)]
pub struct DaemonStats {
    /// RPC requests served.
    pub requests: Counter,
    /// Bytes moved host→device.
    pub bytes_h2d: Counter,
    /// Bytes moved device→host.
    pub bytes_d2h: Counter,
    /// Open requests forwarded to the host FS.
    pub opens: Counter,
    /// `ReadPages` requests that carried more than one page (the batches
    /// readahead produces; a plain miss is a batch of one and not counted).
    pub batched_rpcs: Counter,
    /// Total pages carried by those multi-page requests. Divide by
    /// [`DaemonStats::batched_rpcs`] for the mean batch width.
    pub pages_per_rpc: Counter,
    /// `WritePages` requests that carried more than one page (the batches
    /// bulk write-back produces; a single-page sync is a batch of one and
    /// not counted) — the write-side mirror of
    /// [`DaemonStats::batched_rpcs`].
    pub batched_write_rpcs: Counter,
    /// Total pages carried by those multi-page write requests. Divide by
    /// [`DaemonStats::batched_write_rpcs`] for the mean batch width.
    pub pages_per_write_rpc: Counter,
}

/// The GPUfs host side: file system, GPUs, RPC hub, and the daemon's
/// worker pool.
///
/// Constructing a `GpufsHost` starts the workers; dropping it shuts the
/// pool down after draining outstanding requests across every worker.
#[derive(Debug)]
pub struct GpufsHost {
    fs: Arc<HostFs>,
    gpus: Vec<Arc<Gpu>>,
    hub: Arc<RpcHub>,
    stats: Arc<DaemonStats>,
    worker_count: usize,
    workers: Vec<JoinHandle<()>>,
}

impl GpufsHost {
    /// Start the host daemon serving `gpus` against `fs` in the paper
    /// prototype's shape: one RPC channel, one worker thread.
    #[must_use]
    pub fn new(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>) -> Self {
        Self::with_concurrency(fs, gpus, 1, 1)
    }

    /// Start the host daemon with the concurrency knobs of `config`
    /// ([`GpufsConfig::rpc_channels`] and [`GpufsConfig::daemon_workers`]).
    #[must_use]
    pub fn with_config(fs: Arc<HostFs>, gpus: Vec<Arc<Gpu>>, config: &GpufsConfig) -> Self {
        Self::with_concurrency(fs, gpus, config.rpc_channels, config.daemon_workers)
    }

    /// Start the host daemon with `rpc_channels` independent request
    /// channels served by a pool of `daemon_workers` threads (both
    /// clamped to ≥ 1; `1, 1` reproduces the original single-FIFO,
    /// single-threaded event loop).
    #[must_use]
    pub fn with_concurrency(
        fs: Arc<HostFs>,
        gpus: Vec<Arc<Gpu>>,
        rpc_channels: usize,
        daemon_workers: usize,
    ) -> Self {
        let hub = Arc::new(RpcHub::with_channels(rpc_channels));
        let stats = Arc::new(DaemonStats::default());
        let worker_count = daemon_workers.max(1);
        let workers = (0..worker_count)
            .map(|w| {
                let fs = Arc::clone(&fs);
                let gpus = gpus.clone();
                let hub = Arc::clone(&hub);
                let stats = Arc::clone(&stats);
                std::thread::Builder::new()
                    .name(format!("gpufs-worker-{w}"))
                    .spawn(move || worker_loop(&fs, &gpus, &hub, &stats))
                    .expect("spawn gpufs daemon worker")
            })
            .collect();
        Self {
            fs,
            gpus,
            hub,
            stats,
            worker_count,
            workers,
        }
    }

    /// The host file system.
    #[must_use]
    pub fn fs(&self) -> &Arc<HostFs> {
        &self.fs
    }

    /// The GPUs served by this daemon.
    #[must_use]
    pub fn gpus(&self) -> &[Arc<Gpu>] {
        &self.gpus
    }

    /// The RPC hub (used by mounts to issue calls).
    #[must_use]
    pub fn hub(&self) -> &Arc<RpcHub> {
        &self.hub
    }

    /// Daemon activity counters (aggregated over the worker pool).
    #[must_use]
    pub fn stats(&self) -> &DaemonStats {
        &self.stats
    }

    /// Size of the worker pool this host was started with.
    #[must_use]
    pub fn daemon_workers(&self) -> usize {
        self.worker_count
    }

    /// Stop the worker pool. Idempotent. Requests queued before the stop
    /// are served first (each worker drains claims until none remain);
    /// calls arriving after it fail with
    /// [`crate::GpufsError::DaemonStopped`] — a threadblock spinning on an
    /// in-flight request is always answered, never stranded.
    pub fn shutdown(&mut self) {
        self.hub.close();
        for handle in self.workers.drain(..) {
            handle.join().expect("gpufs daemon worker panicked");
        }
    }
}

impl Drop for GpufsHost {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker of the daemon pool: claim requests from the hub's channels
/// until shutdown, serving each against the host FS and DMA engines.
fn worker_loop(fs: &HostFs, gpus: &[Arc<Gpu>], hub: &RpcHub, stats: &DaemonStats) {
    let timings = fs.timings().clone();
    while let Some(env) = hub.next() {
        stats.requests.incr();
        // Each request is timed from its own issue point: poll-notice
        // latency plus dispatch, then the host file system and DMA
        // engines — which carry all the real serialization (disk head,
        // PCIe direction). The daemon's own event loop is orders of
        // magnitude faster than either and is not modeled as a shared
        // bottleneck, which also makes virtual time independent of the
        // real worker count (requests drain in claim order regardless).
        let mut clock = Clock::starting_at(env.issue + timings.rpc_poll_ns);
        clock.advance(timings.rpc_dispatch_ns);
        let (result, end) = serve(fs, gpus, stats, &mut clock, env.gpu, &env.req);
        // Sends fail only if the caller vanished (e.g. a panicking test
        // threadblock); the daemon itself must keep serving others.
        let _ = env.tx.send((result, end));
    }
}

/// Serve one request. Returns the response and the virtual time at which
/// the requester may proceed (which, for reads, includes DMA the worker
/// itself does not wait for).
fn serve(
    fs: &HostFs,
    gpus: &[Arc<Gpu>],
    stats: &DaemonStats,
    clock: &mut Clock,
    _gpu: usize,
    req: &Request,
) -> (Result<RespOk, FsError>, Nanos) {
    let now = clock.now();
    match req {
        Request::Open {
            path,
            write,
            create,
            truncate,
        } => {
            stats.opens.incr();
            let flags = OpenFlags {
                read: true,
                write: *write,
                create: *create,
                truncate: *truncate,
            };
            match fs.open(path, flags, now) {
                Ok((fd, t)) => {
                    clock.wait_until(t);
                    let meta = fs.fstat(fd).expect("fresh fd");
                    let generation = fs.consistency().generation(meta.ino);
                    (
                        Ok(RespOk::Opened {
                            fd,
                            ino: meta.ino,
                            size: meta.size,
                            generation,
                        }),
                        clock.now(),
                    )
                }
                Err(e) => (Err(e), clock.now()),
            }
        }
        Request::Close { fd } => {
            let r = fs.close(*fd).map(|()| RespOk::Done);
            (r, clock.now())
        }
        Request::ReadPages { fd, pages, gpu } => {
            if pages.len() > 1 {
                stats.batched_rpcs.incr();
                stats.pages_per_rpc.add(pages.len() as u64);
            }
            // The worker preads every page of the batch (the host file
            // system pipelines/serializes these as its cost model says),
            // then ships all of them with one scatter-gather DMA charge.
            let mut staging: Vec<Vec<u8>> = Vec::with_capacity(pages.len());
            let mut ns = Vec::with_capacity(pages.len());
            for page in pages {
                let mut buf = vec![0u8; page.len];
                match fs.pread(*fd, page.offset, &mut buf, clock.now()) {
                    Ok((n, t)) => {
                        clock.wait_until(t);
                        buf.truncate(n);
                        ns.push(n);
                        staging.push(buf);
                    }
                    Err(e) => return (Err(e), clock.now()),
                }
            }
            let parts: Vec<(&[u8], _)> = staging
                .iter()
                .zip(pages)
                .filter(|(buf, _)| !buf.is_empty())
                .map(|(buf, page)| (buf.as_slice(), page.dst))
                .collect();
            let mut end = clock.now();
            if !parts.is_empty() {
                // Async DMA: charge the GPU's h2d engine from the last
                // pread completion; the worker moves on.
                let r = gpus[*gpu].dma_h2d_scattered(&parts, clock.now());
                stats
                    .bytes_h2d
                    .add(parts.iter().map(|(b, _)| b.len() as u64).sum());
                end = r.end;
            }
            (Ok(RespOk::Read { ns }), end)
        }
        Request::WritePages { fd, pages, gpu } => {
            if pages.len() > 1 {
                stats.batched_write_rpcs.incr();
                stats.pages_per_write_rpc.add(pages.len() as u64);
            }
            // Flatten every page's dirty extents into one scatter-gather
            // descriptor list: a single D2H transaction (one setup charge)
            // gathers only the modified bytes of the whole batch.
            let mut srcs: Vec<(DevPtr, u64)> = Vec::new(); // (gpu addr, file off)
            let mut staging: Vec<Vec<u8>> = Vec::new();
            for pw in pages {
                for &(off, len) in &pw.extents {
                    srcs.push((pw.src + off as usize, pw.page_offset + u64::from(off)));
                    staging.push(vec![0u8; len as usize]);
                }
            }
            let ino = fs.fstat(*fd).map(|m| m.ino).unwrap_or_default();
            if srcs.is_empty() {
                let generation = fs.consistency().generation(ino);
                return (Ok(RespOk::Wrote { n: 0, generation }), clock.now());
            }
            let mut parts: Vec<(DevPtr, &mut [u8])> = srcs
                .iter()
                .zip(staging.iter_mut())
                .map(|(&(src, _), buf)| (src, buf.as_mut_slice()))
                .collect();
            let r = gpus[*gpu].dma_d2h_scattered(&mut parts, now);
            drop(parts);
            stats
                .bytes_d2h
                .add(staging.iter().map(|b| b.len() as u64).sum());
            // Unlike reads, the gather must land in host memory before the
            // file writes can run.
            clock.wait_until(r.end);
            let mut written = 0usize;
            for (&(_, file_off), data) in srcs.iter().zip(&staging) {
                match fs.pwrite(*fd, file_off, data, clock.now()) {
                    Ok((n, t)) => {
                        clock.wait_until(t);
                        written += n;
                    }
                    Err(e) => return (Err(e), clock.now()),
                }
            }
            let generation = fs.consistency().generation(ino);
            (
                Ok(RespOk::Wrote {
                    n: written,
                    generation,
                }),
                clock.now(),
            )
        }
        Request::Fsync { fd } => match fs.fsync(*fd, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Unlink { path } => match fs.unlink(path, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Truncate { fd, size } => match fs.ftruncate(*fd, *size, now) {
            Ok(t) => {
                clock.wait_until(t);
                (Ok(RespOk::Done), clock.now())
            }
            Err(e) => (Err(e), clock.now()),
        },
        Request::Stat { path } => {
            let r = fs.stat(path).map(|m| RespOk::Stat {
                ino: m.ino,
                size: m.size,
                writable: m.writable,
                generation: fs.consistency().generation(m.ino),
            });
            (r, clock.now())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpc::{PageRead, PageWrite};
    use gpusim::GpuSpec;
    use hostfs::HostFsConfig;
    use simtime::Timings;

    fn host() -> GpufsHost {
        pool(1, 1)
    }

    fn pool(channels: usize, workers: usize) -> GpufsHost {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        GpufsHost::with_concurrency(fs, vec![gpu], channels, workers)
    }

    fn call(h: &GpufsHost, req: Request) -> crate::error::GpufsResult<(RespOk, Nanos)> {
        h.hub().call(0, 0, 0, &Timings::default(), req)
    }

    #[test]
    fn open_read_close_via_rpc() {
        let h = host();
        h.fs().create("/f", b"hello world").unwrap();
        let (ok, t_open) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, size, .. } = ok else {
            panic!("expected Opened")
        };
        assert_eq!(size, 11);
        assert!(t_open > 0);

        let dst = h.gpus()[0].global().alloc(4096).unwrap();
        let (ok, t_read) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 0,
                    len: 4096,
                    dst,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Read { ns } = ok else {
            panic!("expected Read")
        };
        assert_eq!(ns, vec![11]);
        assert!(t_read > t_open, "read completion includes pread + DMA");
        let mut out = vec![0u8; 11];
        h.gpus()[0].global().read(dst, &mut out);
        assert_eq!(&out, b"hello world");

        let (ok, _) = call(&h, Request::Close { fd }).unwrap();
        assert!(matches!(ok, RespOk::Done));
    }

    #[test]
    fn write_pages_touch_only_modified_bytes() {
        let h = host();
        h.fs().create("/f", &[0xaau8; 64]).unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/f".into(),
                write: true,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        let src = h.gpus()[0].global().alloc(64).unwrap();
        h.gpus()[0].global().write(src, &[0x55u8; 64]);
        // Diff says only bytes [8,12) and [40,44) changed.
        let (ok, _) = call(
            &h,
            Request::WritePages {
                fd,
                pages: vec![PageWrite {
                    src,
                    page_offset: 0,
                    extents: vec![(8, 4), (40, 4)],
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Wrote { n, .. } = ok else {
            panic!()
        };
        assert_eq!(n, 8);
        let (data, _) = h.fs().read_whole("/f", 0).unwrap();
        assert_eq!(&data[..8], &[0xaa; 8], "unmodified prefix preserved");
        assert_eq!(&data[8..12], &[0x55; 4]);
        assert_eq!(
            &data[12..40],
            &[0xaa; 28],
            "bytes between extents preserved"
        );
        assert_eq!(&data[40..44], &[0x55; 4]);
        assert_eq!(
            h.stats().batched_write_rpcs.get(),
            0,
            "a single-page sync is a batch of one, not counted"
        );
    }

    #[test]
    fn batched_write_beats_singletons_and_counts_pages() {
        // Four dirty pages as one WritePages batch vs four singleton
        // requests: the batch must be strictly faster (one round-trip,
        // one D2H setup) and must land in the batch counters.
        let page = 64 << 10;
        let run = |batched: bool| -> (Nanos, u64) {
            let h = host();
            h.fs().create("/wb", &vec![0u8; 4 * page]).unwrap();
            let (ok, _) = call(
                &h,
                Request::Open {
                    path: "/wb".into(),
                    write: true,
                    create: false,
                    truncate: false,
                },
            )
            .unwrap();
            let RespOk::Opened { fd, .. } = ok else {
                panic!()
            };
            let src = h.gpus()[0].global().alloc(4 * page).unwrap();
            h.gpus()[0].global().write(src, &vec![9u8; 4 * page]);
            let mk = |i: usize| PageWrite {
                src: src + i * page,
                page_offset: (i * page) as u64,
                extents: vec![(0, page as u32)],
            };
            let end = if batched {
                let (_, t) = call(
                    &h,
                    Request::WritePages {
                        fd,
                        pages: (0..4).map(mk).collect(),
                        gpu: 0,
                    },
                )
                .unwrap();
                t
            } else {
                let mut issue = 0;
                for i in 0..4 {
                    let (_, t) = h
                        .hub()
                        .call(
                            0,
                            0,
                            issue,
                            &Timings::default(),
                            Request::WritePages {
                                fd,
                                pages: vec![mk(i)],
                                gpu: 0,
                            },
                        )
                        .unwrap();
                    issue = t;
                }
                issue
            };
            let (data, _) = h.fs().read_whole("/wb", 0).unwrap();
            assert!(data.iter().all(|&b| b == 9), "all bytes written");
            assert_eq!(h.stats().bytes_d2h.get(), 4 * page as u64);
            (end, h.stats().batched_write_rpcs.get())
        };
        let (t_batch, batched_rpcs) = run(true);
        let (t_serial, single_rpcs) = run(false);
        assert_eq!(batched_rpcs, 1);
        assert_eq!(single_rpcs, 0, "singletons are not batches");
        assert!(
            t_batch < t_serial,
            "batch ({t_batch}) must beat synchronous singletons ({t_serial})"
        );
    }

    #[test]
    fn errors_propagate() {
        let h = host();
        let err = call(
            &h,
            Request::Open {
                path: "/missing".into(),
                write: false,
                create: false,
                truncate: false,
            },
        );
        assert!(matches!(
            err,
            Err(crate::error::GpufsError::Host(FsError::NotFound(_)))
        ));
    }

    #[test]
    fn stat_and_unlink() {
        let h = host();
        h.fs().create("/s", &[1u8; 100]).unwrap();
        let (ok, _) = call(&h, Request::Stat { path: "/s".into() }).unwrap();
        let RespOk::Stat { size, .. } = ok else {
            panic!()
        };
        assert_eq!(size, 100);
        call(&h, Request::Unlink { path: "/s".into() }).unwrap();
        assert!(!h.fs().exists("/s"));
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_later_calls() {
        let mut h = host();
        h.shutdown();
        h.shutdown();
        let err = call(&h, Request::Stat { path: "/".into() });
        assert!(matches!(err, Err(crate::error::GpufsError::DaemonStopped)));

        // Multi-worker drain: shut a pool down while requests are in
        // flight from many client threads. Every call must resolve —
        // served before the close, or rejected after it — and the pool
        // must drain all channels and exit (the join below must return).
        let mut h = pool(4, 3);
        h.fs().create("/inflight", &[1u8; 64]).unwrap();
        let outcomes = std::thread::scope(|s| {
            let clients: Vec<_> = (0..8)
                .map(|slot| {
                    let hub = Arc::clone(h.hub());
                    s.spawn(move || {
                        let t = Timings::default();
                        let mut oks = 0u32;
                        let mut stopped = 0u32;
                        for _ in 0..50 {
                            match hub.call(
                                slot,
                                0,
                                0,
                                &t,
                                Request::Stat {
                                    path: "/inflight".into(),
                                },
                            ) {
                                Ok((RespOk::Stat { size, .. }, _)) => {
                                    assert_eq!(size, 64);
                                    oks += 1;
                                }
                                Err(crate::error::GpufsError::DaemonStopped) => stopped += 1,
                                other => panic!("unexpected outcome: {other:?}"),
                            }
                        }
                        (oks, stopped)
                    })
                })
                .collect();
            // Let some requests through, then close under load.
            std::thread::yield_now();
            h.shutdown();
            h.shutdown(); // still idempotent with a pool
            clients
                .into_iter()
                .map(|c| c.join().unwrap())
                .collect::<Vec<_>>()
        });
        let served: u32 = outcomes.iter().map(|(o, _)| o).sum();
        let rejected: u32 = outcomes.iter().map(|(_, r)| r).sum();
        assert_eq!(served + rejected, 8 * 50, "every call resolved");
        assert!(matches!(
            call(&h, Request::Stat { path: "/".into() }),
            Err(crate::error::GpufsError::DaemonStopped)
        ));
    }

    #[test]
    fn mount_rejects_mismatched_concurrency_config() {
        use crate::config::GpufsConfig;
        let h = pool(4, 3);
        assert_eq!(h.hub().num_channels(), 4);
        assert_eq!(h.daemon_workers(), 3);
        // A config naming different channel/worker counts would be a
        // silent no-op (the hub already exists): mount must reject it.
        let err = h.mount(0, GpufsConfig::small_test());
        assert!(matches!(err, Err(crate::error::GpufsError::InvalidMode(_))));
        let ok = h.mount(0, GpufsConfig::small_test().with_concurrency(4, 3));
        assert!(ok.is_ok());
        // And the config path agrees with itself end to end.
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let cfg = GpufsConfig::small_test().with_concurrency(2, 2);
        let h2 = GpufsHost::with_config(fs, vec![gpu], &cfg);
        assert!(h2.mount(0, cfg).is_ok());
    }

    #[test]
    fn worker_pool_serves_concurrent_clients_correctly() {
        let h = pool(4, 3);
        h.fs()
            .create("/pool", &(0u32..4096).map(|i| i as u8).collect::<Vec<_>>())
            .unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/pool".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        std::thread::scope(|s| {
            for slot in 0..8usize {
                let h = &h;
                s.spawn(move || {
                    let t = Timings::default();
                    let dst = h.gpus()[0].global().alloc(512).unwrap();
                    for round in 0..10u64 {
                        let offset = ((slot as u64 * 10 + round) % 8) * 512;
                        let (ok, _) = h
                            .hub()
                            .call(
                                slot,
                                0,
                                0,
                                &t,
                                Request::ReadPages {
                                    fd,
                                    pages: vec![PageRead {
                                        offset,
                                        len: 512,
                                        dst,
                                    }],
                                    gpu: 0,
                                },
                            )
                            .unwrap();
                        let RespOk::Read { ns } = ok else { panic!() };
                        assert_eq!(ns, vec![512]);
                        let mut out = vec![0u8; 512];
                        h.gpus()[0].global().read(dst, &mut out);
                        for (i, &b) in out.iter().enumerate() {
                            assert_eq!(b, (offset as usize + i) as u8, "byte {i} of {offset}");
                        }
                    }
                });
            }
        });
        assert_eq!(h.stats().requests.get(), 1 + 8 * 10);
    }

    #[test]
    fn daemon_serializes_but_overlaps_dma() {
        // Two reads: the worker's pread of the second should overlap the
        // first's DMA (second completion < strictly-serial sum).
        let h = host();
        h.fs().create_synthetic("/big", 8 << 20, 3).unwrap();
        let (ok, _) = call(
            &h,
            Request::Open {
                path: "/big".into(),
                write: false,
                create: false,
                truncate: false,
            },
        )
        .unwrap();
        let RespOk::Opened { fd, .. } = ok else {
            panic!()
        };
        let a = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let b = h.gpus()[0].global().alloc(1 << 20).unwrap();
        let (_, t1) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 0,
                    len: 1 << 20,
                    dst: a,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let (_, t2) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: vec![PageRead {
                    offset: 1 << 20,
                    len: 1 << 20,
                    dst: b,
                }],
                gpu: 0,
            },
        )
        .unwrap();
        let pread_and_dma = t1; // first request end-to-end
        assert!(
            t2 < 2 * pread_and_dma,
            "second read ({t2}) should overlap with first ({pread_and_dma})"
        );
    }

    #[test]
    fn batched_read_beats_singletons_and_counts_pages() {
        // The same four pages as one batch vs four singleton requests: the
        // batch must be strictly faster (one RPC round-trip, one DMA
        // setup) and must land in the batch counters.
        let h = host();
        h.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let open = |h: &GpufsHost| {
            let (ok, _) = call(
                h,
                Request::Open {
                    path: "/batch".into(),
                    write: false,
                    create: false,
                    truncate: false,
                },
            )
            .unwrap();
            let RespOk::Opened { fd, .. } = ok else {
                panic!()
            };
            fd
        };
        let fd = open(&h);
        let page = 64 << 10;
        let dst = h.gpus()[0].global().alloc(4 * page).unwrap();
        let pages: Vec<PageRead> = (0..4)
            .map(|i| PageRead {
                offset: (i * page) as u64,
                len: page,
                dst: dst + i * page,
            })
            .collect();
        let (ok, t_batch) = call(
            &h,
            Request::ReadPages {
                fd,
                pages: pages.clone(),
                gpu: 0,
            },
        )
        .unwrap();
        let RespOk::Read { ns } = ok else { panic!() };
        assert_eq!(ns, vec![page; 4]);
        assert_eq!(h.stats().batched_rpcs.get(), 1);
        assert_eq!(h.stats().pages_per_rpc.get(), 4);
        assert_eq!(h.stats().bytes_h2d.get(), 4 * page as u64);

        // Singleton baseline on a fresh rig (fresh DMA queue and clocks).
        let h2 = host();
        h2.fs().create_synthetic("/batch", 1 << 20, 5).unwrap();
        let fd2 = open(&h2);
        let dst2 = h2.gpus()[0].global().alloc(4 * page).unwrap();
        let mut t_serial = 0;
        let mut issue = 0;
        for i in 0..4 {
            let (_, t) = h2
                .hub()
                .call(
                    0,
                    0,
                    issue,
                    &Timings::default(),
                    Request::ReadPages {
                        fd: fd2,
                        pages: vec![PageRead {
                            offset: (i * page) as u64,
                            len: page,
                            dst: dst2 + i * page,
                        }],
                        gpu: 0,
                    },
                )
                .unwrap();
            issue = t;
            t_serial = t;
        }
        assert_eq!(
            h2.stats().batched_rpcs.get(),
            0,
            "singletons are not batches"
        );
        assert!(
            t_batch < t_serial,
            "batch ({t_batch}) must beat synchronous singletons ({t_serial})"
        );
        // Bytes land identically either way.
        let mut a = vec![0u8; 4 * page];
        let mut b = vec![0u8; 4 * page];
        h.gpus()[0].global().read(dst, &mut a);
        h2.gpus()[0].global().read(dst2, &mut b);
        assert_eq!(a, b);
    }
}
