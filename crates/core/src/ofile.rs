//! Per-file open state: `gopen`/`gclose` and their interaction with the
//! open and closed file tables (paper §3.2 and §4.1).
//!
//! This layer sits between the API entry points and the buffer cache. It
//! owns the lifecycle decisions the paper's semantics hinge on: open
//! coalescing (descriptors name files, not opens), closed-file-table
//! revival with generation-based lazy invalidation, and the deliberate
//! decoupling of `gclose` from write-back.

use std::sync::Arc;

use gpusim::BlockCtx;

use crate::api::GFd;
use crate::config::GOpenMode;
use crate::error::{GpufsError, GpufsResult};
use crate::mount::GpuFsMount;
use crate::rpc::{Request, RespOk};
use crate::table::GFile;

impl GpuFsMount {
    /// `gopen`: open `path` in `mode`, coalescing with concurrent and
    /// prior opens of the same file.
    ///
    /// The first open forwards to the host; reopens of a file parked in
    /// the closed-file table revive its cached pages when the host's
    /// consistency generation still matches (lazy invalidation, §4.4).
    ///
    /// # Errors
    ///
    /// Fails if the host rejects the open, or if the file is already open
    /// on this GPU in a different mode.
    pub fn open(&self, blk: &mut BlockCtx<'_>, path: &str, mode: GOpenMode) -> GpufsResult<GFd> {
        blk.advance(self.timings.gpufs_page_op_ns);
        let plock = self.tables.path_lock(path);
        let r = {
            let _guard = plock.lock();
            self.open_locked(blk, path, mode)
        };
        drop(plock);
        self.tables.gc_path_lock(path);
        r
    }

    fn open_locked(&self, blk: &mut BlockCtx<'_>, path: &str, mode: GOpenMode) -> GpufsResult<GFd> {
        if let Some(f) = self.tables.get_open(path) {
            if f.mode() != mode {
                return Err(GpufsError::InvalidMode(
                    "file already open in a different mode",
                ));
            }
            f.add_ref();
            return Ok(GFd { file: f });
        }

        // Check the closed-file table *first* (paper §4.1): a parked cache
        // whose consistency generation still matches the host revives with
        // only a cheap staleness probe — crucially, no re-open and no
        // re-truncation of files other blocks just produced.
        if !self.config.disable_closed_table {
            if let Some(ino) = self.tables.closed_ino_for_path(path) {
                if let Some(parked) = self.tables.take_closed(ino) {
                    let fresh = if parked.mode() == mode {
                        // One read of the write-shared generation table: a
                        // PCIe access, not a daemon RPC. The decision is
                        // the *registry's* (the WRAPFS character-device
                        // query of §4.4), not the parked file's own
                        // belief: this GPU must still be registered, at
                        // exactly the current generation — so a foreign
                        // GPU's write-back (which bumped the generation)
                        // or a reclaim that drained and unregistered this
                        // cache behind the parked handle both refuse
                        // revival, even when the GPU-local generation
                        // happens to look current.
                        blk.advance(self.timings.rpc_complete_ns);
                        let cons = self.host_fs.consistency();
                        let current = cons.generation(ino);
                        cons.registered_generation(ino, self.coherence_id) == Some(current)
                            && parked.generation() == current
                    } else {
                        false
                    };
                    if fresh {
                        parked.revive();
                        self.tables.insert_open(Arc::clone(&parked));
                        return Ok(GFd { file: parked });
                    }
                    // Stale or mode-incompatible: hand it to the full-open
                    // path below, which flushes and discards it.
                    let _ = self.tables.park_closed(parked);
                }
            }
        }

        let create = matches!(mode, GOpenMode::WriteOnce | GOpenMode::Temp);
        // O_GWRONCE "creates a new write-only file" but must NOT truncate
        // an existing one: several GPUs co-producing disjoint ranges of
        // one output file is the paper's §3.1 merge case, and a truncating
        // reopen would destroy ranges other GPUs already synced.
        let resp = self.rpc(
            blk,
            Request::Open {
                path: path.to_owned(),
                write: mode.writable(),
                create,
                truncate: false,
            },
        )?;
        let RespOk::Opened {
            fd: host_fd,
            ino,
            size,
            generation,
        } = resp
        else {
            unreachable!("open must answer Opened");
        };

        if let Some(parked) = self.tables.take_closed(ino) {
            if parked.generation() == generation && parked.mode() == mode {
                // Cache revival: keep the parked file (and its host fd),
                // release the descriptor the probe open just created.
                // Re-register with the consistency layer — this path also
                // repairs a cache whose registration was dropped (e.g. by
                // drained-closed-file reclaim) while its pages survived.
                let _ = self.rpc(blk, Request::Close { fd: host_fd })?;
                parked.revive();
                self.tables.insert_open(Arc::clone(&parked));
                self.host_fs
                    .consistency()
                    .register_gpu_cache(ino, self.coherence_id, generation);
                return Ok(GFd { file: parked });
            }
            // Stale (or mode-incompatible) cached copy: drop it lazily,
            // exactly at reopen time. Local writes that were never synced
            // are flushed first through the byte diff, so they merge with
            // whatever changed the file.
            self.flush_dirty(blk, &parked)?;
            self.discard_file_cache(&parked);
            let _ = self.rpc(
                blk,
                Request::Close {
                    fd: parked.host_fd(),
                },
            )?;
        }

        let file = Arc::new(GFile::new(
            path.to_owned(),
            mode,
            host_fd,
            ino,
            size,
            generation,
        ));
        self.tables.insert_open(Arc::clone(&file));
        // This GPU now caches the file at `generation`: register with the
        // consistency layer so reopen-time staleness probes (and
        // multi-GPU audits via `cachers`) see it.
        self.host_fs
            .consistency()
            .register_gpu_cache(ino, self.coherence_id, generation);
        Ok(GFd { file })
    }

    /// `gclose`: drop this threadblock's reference. The last close parks
    /// the file in the closed-file table **without** writing anything
    /// back — synchronization is decoupled from close (paper §3.2) —
    /// except `O_NOSYNC` temporaries, whose cache is discarded.
    ///
    /// # Errors
    ///
    /// Fails only if a required host interaction fails (temp-file close).
    pub fn close(&self, blk: &mut BlockCtx<'_>, fd: GFd) -> GpufsResult<()> {
        blk.advance(self.timings.gpufs_page_op_ns);
        let file = fd.file;
        if !file.drop_ref() {
            return Ok(());
        }
        let plock = self.tables.path_lock(file.path());
        let r = {
            let _guard = plock.lock();
            self.close_locked(blk, &file)
        };
        drop(plock);
        self.tables.gc_path_lock(file.path());
        r
    }

    fn close_locked(&self, blk: &mut BlockCtx<'_>, file: &Arc<GFile>) -> GpufsResult<()> {
        let file = Arc::clone(file);
        if file.refcount() > 0 {
            return Ok(()); // a concurrent gopen revived it first
        }
        if !self.tables.remove_open(&file) {
            return Ok(()); // already superseded
        }
        if file.mode() == GOpenMode::Temp {
            self.discard_file_cache(&file);
            let _ = self.rpc(blk, Request::Close { fd: file.host_fd() })?;
            return Ok(());
        }
        if self.config.sync_on_close {
            // POSIX-close ablation: propagate everything now, paying the
            // write-back storm the paper's decoupling avoids.
            self.flush_dirty(blk, &file)?;
        }
        if self.config.disable_closed_table {
            // No-closed-table ablation: the cache dies with the open.
            self.flush_dirty(blk, &file)?;
            self.discard_file_cache(&file);
            let _ = self.rpc(blk, Request::Close { fd: file.host_fd() })?;
            return Ok(());
        }
        if let Some(displaced) = self.tables.park_closed(Arc::clone(&file)) {
            if !Arc::ptr_eq(&displaced, &file) {
                // An older cached copy of the same inode: flush its dirty
                // pages so no local writes are lost, then drop it. The
                // discard unregisters this GPU from the consistency
                // layer, but the copy just parked is still cached —
                // restore its registration.
                self.flush_dirty(blk, &displaced)?;
                self.discard_file_cache(&displaced);
                let _ = self.rpc(
                    blk,
                    Request::Close {
                        fd: displaced.host_fd(),
                    },
                )?;
                self.host_fs.consistency().register_gpu_cache(
                    file.ino(),
                    self.coherence_id,
                    file.generation(),
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpufsConfig;
    use crate::testrig::{rig, run_block};
    use gpusim::Grid;

    #[test]
    fn closed_file_table_revives_cache_without_host_reads() {
        let r = rig(1);
        r.fs.create("/f", &[7u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let h2d_before = r.host.stats().bytes_h2d.get();
        let misses_before = mount.counters().misses.get();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(
            r.host.stats().bytes_h2d.get(),
            h2d_before,
            "revived: no refetch"
        );
        assert_eq!(
            mount.counters().misses.get(),
            misses_before,
            "all hits after revival"
        );
    }

    #[test]
    fn host_write_invalidates_closed_cache_lazily() {
        let r = rig(1);
        r.fs.create("/f", &[1u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 16];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        // A CPU process rewrites the file (bumps the generation).
        let (hfd, t) = r.fs.open("/f", hostfs::OpenFlags::read_write(), 0).unwrap();
        r.fs.pwrite(hfd, 0, &[2u8; 4096], t).unwrap();
        r.fs.close(hfd).unwrap();
        // Reopen on the GPU: stale cache must be dropped, fresh data read.
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 16];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == 2),
                "stale page served after host write"
            );
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn consistency_registry_tracks_multi_mount_cachers() {
        // Two GPUs mount one host: the WRAPFS-like registry must track
        // exactly which GPUs cache the file, at which generation, across
        // open → host write → stale reopen → discard.
        let r = rig(2);
        r.fs.create("/audit", &[7u8; 4096]).unwrap();
        let ino = r.fs.ino_of("/audit").unwrap();
        let m0 = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        let m1 = r.host.mount(1, GpufsConfig::small_test()).unwrap();
        assert!(r.fs.consistency().cachers(ino).is_empty());
        let touch = |mount: &std::sync::Arc<crate::mount::GpuFsMount>,
                     gpu: &std::sync::Arc<gpusim::Gpu>| {
            let mount = std::sync::Arc::clone(mount);
            gpu.launch(gpusim::Grid::new(1, 32), 0, move |blk| {
                let fd = mount.open(blk, "/audit", GOpenMode::ReadOnly).unwrap();
                let mut buf = [0u8; 64];
                mount.read(blk, &fd, 0, &mut buf).unwrap();
                mount.close(blk, fd).unwrap();
            });
        };
        touch(&m0, &r.gpus[0]);
        touch(&m1, &r.gpus[1]);
        assert_eq!(
            r.fs.consistency().cachers(ino),
            [0, 1].into_iter().collect(),
            "both GPUs hold cached (parked) copies"
        );
        assert!(!r.fs.consistency().is_stale(ino, 0));
        assert!(!r.fs.consistency().is_stale(ino, 1));

        // A host write lazily invalidates both registered copies.
        let (hfd, t) =
            r.fs.open("/audit", hostfs::OpenFlags::read_write(), 0)
                .unwrap();
        r.fs.pwrite(hfd, 0, &[9u8; 64], t).unwrap();
        r.fs.close(hfd).unwrap();
        assert!(r.fs.consistency().is_stale(ino, 0));
        assert!(r.fs.consistency().is_stale(ino, 1));

        // GPU 0 reopens: the stale cache is dropped and refetched, and
        // its registration moves to the new generation; GPU 1's parked
        // copy stays registered — and stale — until *it* reopens.
        touch(&m0, &r.gpus[0]);
        assert_eq!(
            r.fs.consistency().cachers(ino),
            [0, 1].into_iter().collect()
        );
        assert!(!r.fs.consistency().is_stale(ino, 0), "refetched fresh");
        assert!(r.fs.consistency().is_stale(ino, 1), "still lazily stale");

        // Unlink discards GPU 0's cache outright: it unregisters.
        r.gpus[0].launch(gpusim::Grid::new(1, 32), 0, {
            let m0 = std::sync::Arc::clone(&m0);
            move |blk| m0.unlink(blk, "/audit").unwrap()
        });
        assert!(
            !r.fs.consistency().cachers(ino).contains(&0),
            "discard unregisters the cacher"
        );
        drop(m1);
    }

    #[test]
    fn revival_probe_is_decided_by_the_registry_not_local_state() {
        // A parked cache whose consistency registration vanished (as
        // drained-closed-file reclaim does) must NOT revive on the cheap
        // generation probe alone: the registry no longer vouches for this
        // GPU. The reopen takes the full-open path — one host open — and
        // repairs the registration; the surviving pages still revive, so
        // nothing is refetched.
        let r = rig(1);
        r.fs.create("/reg", &[4u8; 8192]).unwrap();
        let ino = r.fs.ino_of("/reg").unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/reg", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let gen = r.fs.consistency().generation(ino);
        assert_eq!(r.fs.consistency().registered_generation(ino, 0), Some(gen));
        // The registration disappears behind the parked handle's back.
        r.fs.consistency().unregister_gpu_cache(ino, 0);
        let opens_before = r.host.stats().opens.get();
        let h2d_before = r.host.stats().bytes_h2d.get();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/reg", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 4));
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(
            r.host.stats().opens.get(),
            opens_before + 1,
            "an unregistered cache must re-probe through a host open"
        );
        assert_eq!(
            r.host.stats().bytes_h2d.get(),
            h2d_before,
            "the surviving pages still revive: nothing refetched"
        );
        assert_eq!(
            r.fs.consistency().registered_generation(ino, 0),
            Some(gen),
            "the reopen repaired the registration"
        );
    }

    #[test]
    fn conflicting_open_modes_error() {
        let r = rig(1);
        r.fs.create("/c", b"x").unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/c", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.open(blk, "/c", GOpenMode::ReadWrite),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn many_blocks_share_one_descriptor_and_refcount() {
        let r = rig(1);
        r.fs.create("/many", &[1u8; 65536]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 64 * 4096)).unwrap();
        // 32 blocks open/read/close the same file concurrently.
        r.gpus[0].launch(Grid::new(32, 64), 0, |blk| {
            let fd = mount.open(blk, "/many", GOpenMode::ReadOnly).unwrap();
            let off = (blk.block_id() as u64 * 2048) % 65536;
            let mut buf = [0u8; 2048];
            let n = mount.read(blk, &fd, off, &mut buf).unwrap();
            assert_eq!(n, 2048);
            assert!(buf.iter().all(|&b| b == 1));
            mount.close(blk, fd).unwrap();
        });
        // All refs dropped: exactly one host open happened (coalescing),
        // unless close raced a reopen (allowed), in which case opens are
        // still far below the 32 a POSIX-per-thread model would issue.
        assert!(
            r.host.stats().opens.get() <= 4,
            "opens = {}",
            r.host.stats().opens.get()
        );
        assert!(mount.counters().lockfree_accesses.get() > 0);
    }

    #[test]
    fn ablation_sync_on_close_writes_back_eagerly() {
        let r = rig(1);
        r.fs.create("/posix.out", &[0u8; 64]).unwrap();
        let cfg = GpufsConfig {
            sync_on_close: true,
            ..GpufsConfig::small_test()
        };
        let mount = r.host.mount(0, cfg).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/posix.out", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, b"eager").unwrap();
            mount.close(blk, fd).unwrap(); // no gfsync!
        });
        let (data, _) = r.fs.read_whole("/posix.out", 0).unwrap();
        assert_eq!(&data[..5], b"eager", "POSIX ablation must sync on close");
    }

    #[test]
    fn ablation_disable_closed_table_refetches() {
        let r = rig(1);
        r.fs.create("/nct.bin", &[3u8; 8192]).unwrap();
        let cfg = GpufsConfig {
            disable_closed_table: true,
            ..GpufsConfig::small_test()
        };
        let mount = r.host.mount(0, cfg).unwrap();
        let run = |start| {
            r.gpus[0].launch(Grid::new(1, 32), start, |blk| {
                let fd = mount.open(blk, "/nct.bin", GOpenMode::ReadOnly).unwrap();
                let mut buf = [0u8; 8192];
                mount.read(blk, &fd, 0, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == 3));
                mount.close(blk, fd).unwrap();
            })
        };
        let k1 = run(0);
        let h2d = r.host.stats().bytes_h2d.get();
        run(k1.end);
        assert!(
            r.host.stats().bytes_h2d.get() > h2d,
            "without the closed-file table the reopen must refetch"
        );
    }
}
