//! The GPU-side GPUfs library: one mount per GPU (paper §3–4).
//!
//! A [`GpuFsMount`] owns the GPU's buffer cache (raw data array, pframes,
//! per-file radix trees), the open/closed file tables, and the RPC client
//! to the host daemon. Kernels call the `g*` API through the mount,
//! passing their [`BlockCtx`] so GPUfs can charge virtual time and honour
//! the prototype's threadblock-granularity calling convention: a call is
//! made once per threadblock, at the same point, with the same arguments
//! (paper §4).
//!
//! No daemon threads run on the GPU: paging and write-back happen on the
//! calling threadblock ("GPUfs code hijacking the calling thread to
//! perform paging", §4.2), preserving the pay-as-you-go principle of §3.4.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use gpusim::{BlockCtx, Gpu};
use simtime::{bw_time_ns, Timings};

use crate::cache::{
    diff_extents, nonzero_extents, CacheCounters, Extents, FPage, FrameArena, FrameIdx, PageState,
    Snapshot,
};
use crate::config::{GOpenMode, GpufsConfig};
use crate::daemon::GpufsHost;
use crate::error::{GpufsError, GpufsResult};
use crate::rpc::{Request, RespOk, RpcHub};
use crate::table::{GFile, Tables};

/// Identical-byte gap below which adjacent dirty extents are merged into
/// one host write.
const DIFF_MERGE_GAP: usize = 64;

/// Rounds of reclaim attempted before a frame allocation gives up.
const RECLAIM_ROUNDS: usize = 256;

/// Frames reclaimed per paging pass; small to keep the hijacked caller's
/// detour short (the paper avoids variable-work replacement like clock).
const RECLAIM_BATCH: usize = 8;

/// A GPUfs file descriptor.
///
/// Descriptors "do not represent individual file opens but merely
/// correspond directly to files" (paper §3.2): every threadblock opening
/// the same path shares the same underlying file object, and `GFd` is a
/// cheap clonable handle to it.
#[derive(Debug, Clone)]
pub struct GFd {
    file: Arc<GFile>,
}

impl GFd {
    /// Path this descriptor names.
    #[must_use]
    pub fn path(&self) -> &str {
        self.file.path()
    }

    /// Open mode.
    #[must_use]
    pub fn mode(&self) -> GOpenMode {
        self.file.mode()
    }

    pub(crate) fn file(&self) -> &Arc<GFile> {
        &self.file
    }
}

/// Metadata returned by [`GpuFsMount::fstat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GStat {
    /// File size at the time of the first `gopen` (paper Table 1).
    pub size: u64,
    /// Host inode number.
    pub ino: u64,
}

/// A pinned page: holds a reference that keeps the frame from eviction,
/// plus the file itself so the fpage (which lives inside the file's radix
/// tree) cannot be freed while pinned.
struct PagePin {
    file: Arc<GFile>,
    fp: *const FPage,
    frame: FrameIdx,
}

// SAFETY: the raw fpage pointer targets the radix tree owned by `file`,
// which the pin keeps alive; FPage itself is Sync.
unsafe impl Send for PagePin {}
unsafe impl Sync for PagePin {}

impl PagePin {
    fn new(file: Arc<GFile>, fp: &FPage, frame: FrameIdx) -> Self {
        Self {
            file,
            fp: fp as *const FPage,
            frame,
        }
    }

    fn fpage(&self) -> &FPage {
        // SAFETY: see the Send/Sync justification above.
        unsafe { &*self.fp }
    }
}

impl Drop for PagePin {
    fn drop(&mut self) {
        let _keepalive = &self.file;
        self.fpage().unpin();
    }
}

/// A mapping produced by [`GpuFsMount::mmap`]: a window into one
/// buffer-cache page, pinned for the mapping's lifetime.
///
/// Like the paper's `gmmap`, the mapping may cover only a prefix of the
/// requested range (never more than one page), and it grants a direct
/// pointer into the GPU buffer cache with no per-byte protection. The
/// Rust port exposes the window read-only; writes go through
/// [`GpuFsMount::write`], which preserves the same consistency semantics.
pub struct GMap<'m> {
    _pin: PagePin,
    ptr: *const u8,
    len: usize,
    file_offset: u64,
    _mount: std::marker::PhantomData<&'m GpuFsMount>,
}

// SAFETY: the data pointer targets GPU global memory owned by the mount's
// Arc<Gpu>, outliving 'm; the pin prevents the frame from being reused.
unsafe impl Send for GMap<'_> {}
unsafe impl Sync for GMap<'_> {}

impl std::fmt::Debug for GMap<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GMap")
            .field("file_offset", &self.file_offset)
            .field("len", &self.len)
            .finish()
    }
}

impl GMap<'_> {
    /// The mapped bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: the pin keeps the frame attached for the mapping's
        // lifetime and the mount (hence the GPU arena) outlives 'm.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the successfully mapped prefix.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true: `gmmap` fails instead).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// File offset of the first mapped byte.
    #[must_use]
    pub fn file_offset(&self) -> u64 {
        self.file_offset
    }
}

/// One GPU's GPUfs instance (see module docs).
pub struct GpuFsMount {
    gpu: Arc<Gpu>,
    hub: Arc<RpcHub>,
    timings: Timings,
    config: GpufsConfig,
    frames: FrameArena,
    tables: Tables,
    counters: CacheCounters,
    /// The consistency layer's per-file generation table, exported by the
    /// host into write-shared memory. Reading it costs one PCIe access
    /// and no daemon round-trip, which is what keeps closed-file-table
    /// revival cheap (paper §4.1: reopen must avoid CPU communication).
    host_fs: Arc<hostfs::HostFs>,
}

impl std::fmt::Debug for GpuFsMount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuFsMount")
            .field("gpu", &self.gpu.id())
            .field("page_size", &self.config.page_size)
            .field("frames", &self.frames.num_frames())
            .field("free_frames", &self.frames.free_frames())
            .finish()
    }
}

impl GpufsHost {
    /// Create a GPUfs mount on GPU `gpu_id` with `config`.
    ///
    /// Allocates the raw data array in the GPU's global memory.
    ///
    /// # Errors
    ///
    /// Fails if the GPU cannot hold the configured buffer cache.
    pub fn mount(&self, gpu_id: usize, config: GpufsConfig) -> GpufsResult<Arc<GpuFsMount>> {
        let gpu = Arc::clone(&self.gpus()[gpu_id]);
        let frames = FrameArena::new(gpu.global(), config.page_size, config.num_frames())?;
        Ok(Arc::new(GpuFsMount {
            timings: gpu.timings().clone(),
            hub: Arc::clone(self.hub()),
            gpu,
            config,
            frames,
            tables: Tables::new(),
            counters: CacheCounters::new(),
            host_fs: Arc::clone(self.fs()),
        }))
    }
}

impl GpuFsMount {
    /// Buffer-cache page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Buffer-cache activity counters.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Frames currently free in the raw data array.
    #[must_use]
    pub fn free_frames(&self) -> usize {
        self.frames.free_frames()
    }

    /// The GPU this mount serves.
    #[must_use]
    pub fn gpu(&self) -> &Arc<Gpu> {
        &self.gpu
    }

    fn rpc(&self, blk: &mut BlockCtx<'_>, req: Request) -> GpufsResult<RespOk> {
        let (ok, t) = self
            .hub
            .call(self.gpu.id(), blk.now(), &self.timings, req)?;
        blk.wait_until(t);
        Ok(ok)
    }

    // ==================================================================
    // gopen / gclose
    // ==================================================================

    /// `gopen`: open `path` in `mode`, coalescing with concurrent and
    /// prior opens of the same file.
    ///
    /// The first open forwards to the host; reopens of a file parked in
    /// the closed-file table revive its cached pages when the host's
    /// consistency generation still matches (lazy invalidation, §4.4).
    ///
    /// # Errors
    ///
    /// Fails if the host rejects the open, or if the file is already open
    /// on this GPU in a different mode.
    pub fn open(&self, blk: &mut BlockCtx<'_>, path: &str, mode: GOpenMode) -> GpufsResult<GFd> {
        blk.advance(self.timings.gpufs_page_op_ns);
        let plock = self.tables.path_lock(path);
        let _guard = plock.lock();

        if let Some(f) = self.tables.get_open(path) {
            if f.mode() != mode {
                return Err(GpufsError::InvalidMode(
                    "file already open in a different mode",
                ));
            }
            f.add_ref();
            return Ok(GFd { file: f });
        }

        // Check the closed-file table *first* (paper §4.1): a parked cache
        // whose consistency generation still matches the host revives with
        // only a cheap staleness probe — crucially, no re-open and no
        // re-truncation of files other blocks just produced.
        if !self.config.disable_closed_table {
            if let Some(ino) = self.tables.closed_ino_for_path(path) {
                if let Some(parked) = self.tables.take_closed(ino) {
                    let fresh = if parked.mode() == mode {
                        // One read of the write-shared generation table: a
                        // PCIe access, not a daemon RPC.
                        blk.advance(self.timings.rpc_complete_ns);
                        self.host_fs.consistency().generation(ino) == parked.generation()
                    } else {
                        false
                    };
                    if fresh {
                        parked.revive();
                        self.tables.insert_open(Arc::clone(&parked));
                        return Ok(GFd { file: parked });
                    }
                    // Stale or mode-incompatible: hand it to the full-open
                    // path below, which flushes and discards it.
                    let _ = self.tables.park_closed(parked);
                }
            }
        }

        let create = matches!(mode, GOpenMode::WriteOnce | GOpenMode::Temp);
        // O_GWRONCE "creates a new write-only file" but must NOT truncate
        // an existing one: several GPUs co-producing disjoint ranges of
        // one output file is the paper's §3.1 merge case, and a truncating
        // reopen would destroy ranges other GPUs already synced.
        let resp = self.rpc(
            blk,
            Request::Open {
                path: path.to_owned(),
                write: mode.writable(),
                create,
                truncate: false,
            },
        )?;
        let RespOk::Opened {
            fd: host_fd,
            ino,
            size,
            generation,
        } = resp
        else {
            unreachable!("open must answer Opened");
        };

        if let Some(parked) = self.tables.take_closed(ino) {
            if parked.generation() == generation && parked.mode() == mode {
                // Cache revival: keep the parked file (and its host fd),
                // release the descriptor the probe open just created.
                let _ = self.rpc(blk, Request::Close { fd: host_fd })?;
                parked.revive();
                self.tables.insert_open(Arc::clone(&parked));
                return Ok(GFd { file: parked });
            }
            // Stale (or mode-incompatible) cached copy: drop it lazily,
            // exactly at reopen time. Local writes that were never synced
            // are flushed first through the byte diff, so they merge with
            // whatever changed the file.
            self.flush_dirty(blk, &parked)?;
            self.discard_file_cache(&parked);
            let _ = self.rpc(
                blk,
                Request::Close {
                    fd: parked.host_fd(),
                },
            )?;
        }

        let file = Arc::new(GFile::new(
            path.to_owned(),
            mode,
            host_fd,
            ino,
            size,
            generation,
        ));
        self.tables.insert_open(Arc::clone(&file));
        Ok(GFd { file })
    }

    /// `gclose`: drop this threadblock's reference. The last close parks
    /// the file in the closed-file table **without** writing anything
    /// back — synchronization is decoupled from close (paper §3.2) —
    /// except `O_NOSYNC` temporaries, whose cache is discarded.
    ///
    /// # Errors
    ///
    /// Fails only if a required host interaction fails (temp-file close).
    pub fn close(&self, blk: &mut BlockCtx<'_>, fd: GFd) -> GpufsResult<()> {
        blk.advance(self.timings.gpufs_page_op_ns);
        let file = fd.file;
        if !file.drop_ref() {
            return Ok(());
        }
        let plock = self.tables.path_lock(file.path());
        let _guard = plock.lock();
        if file.refcount() > 0 {
            return Ok(()); // a concurrent gopen revived it first
        }
        if !self.tables.remove_open(&file) {
            return Ok(()); // already superseded
        }
        if file.mode() == GOpenMode::Temp {
            self.discard_file_cache(&file);
            let _ = self.rpc(blk, Request::Close { fd: file.host_fd() })?;
            return Ok(());
        }
        if self.config.sync_on_close {
            // POSIX-close ablation: propagate everything now, paying the
            // write-back storm the paper's decoupling avoids.
            self.flush_dirty(blk, &file)?;
        }
        if self.config.disable_closed_table {
            // No-closed-table ablation: the cache dies with the open.
            self.flush_dirty(blk, &file)?;
            self.discard_file_cache(&file);
            let _ = self.rpc(blk, Request::Close { fd: file.host_fd() })?;
            return Ok(());
        }
        if let Some(displaced) = self.tables.park_closed(Arc::clone(&file)) {
            if !Arc::ptr_eq(&displaced, &file) {
                // An older cached copy of the same inode: flush its dirty
                // pages so no local writes are lost, then drop it.
                self.flush_dirty(blk, &displaced)?;
                self.discard_file_cache(&displaced);
                let _ = self.rpc(
                    blk,
                    Request::Close {
                        fd: displaced.host_fd(),
                    },
                )?;
            }
        }
        Ok(())
    }

    // ==================================================================
    // gread / gwrite
    // ==================================================================

    /// `gread`: read up to `dst.len()` bytes at the explicit `offset`
    /// (GPUfs descriptors have no seek pointer; this is `pread`).
    /// Returns the number of bytes read (short at end of file).
    ///
    /// # Errors
    ///
    /// Fails for `O_GWRONCE` files (never readable) or on host errors
    /// while faulting pages in.
    pub fn read(
        &self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        dst: &mut [u8],
    ) -> GpufsResult<usize> {
        let file = fd.file();
        if !file.mode().readable() {
            return Err(GpufsError::WriteOnce(file.path().to_owned()));
        }
        let size = file.size();
        if offset >= size || dst.is_empty() {
            return Ok(0);
        }
        let want = dst.len().min((size - offset) as usize);
        let ps = self.config.page_size as u64;
        let mut done = 0usize;
        while done < want {
            let off = offset + done as u64;
            let (page_idx, in_page) = (off / ps, (off % ps) as usize);
            let pin = self.pin_page(blk, file, page_idx)?;
            let n = (self.config.page_size - in_page).min(want - done);
            self.gpu.global().read(
                self.frames.frame_ptr(pin.frame) + in_page,
                &mut dst[done..done + n],
            );
            blk.advance(
                self.timings.gpu_mem_latency_ns + bw_time_ns(n as u64, self.timings.gpu_mem_mb_s),
            );
            done += n;
        }
        Ok(done)
    }

    /// `gwrite`: write `src` at the explicit `offset`, extending the file
    /// locally. Data stays in the GPU buffer cache until `gfsync`,
    /// `gmsync`, or eviction propagates it (paper §3.1–3.2). Ends with a
    /// system memory fence as the paper's implementation does (§4.1).
    ///
    /// # Errors
    ///
    /// Fails for read-only descriptors or on host errors while faulting
    /// pages in.
    pub fn write(
        &self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        src: &[u8],
    ) -> GpufsResult<usize> {
        let file = fd.file();
        if !file.mode().writable() {
            return Err(GpufsError::ReadOnly(file.path().to_owned()));
        }
        let ps = self.config.page_size as u64;
        let mut done = 0usize;
        while done < src.len() {
            let off = offset + done as u64;
            let (page_idx, in_page) = (off / ps, (off % ps) as usize);
            let pin = self.pin_page(blk, file, page_idx)?;
            let n = (self.config.page_size - in_page).min(src.len() - done);
            self.gpu.global().write(
                self.frames.frame_ptr(pin.frame) + in_page,
                &src[done..done + n],
            );
            blk.advance(
                self.timings.gpu_mem_latency_ns + bw_time_ns(n as u64, self.timings.gpu_mem_mb_s),
            );
            let pf = self.frames.pframe(pin.frame);
            pf.data_size.fetch_max(in_page + n, Ordering::AcqRel);
            pf.dirty.store(true, Ordering::Release);
            done += n;
        }
        file.grow_to(offset + src.len() as u64);
        blk.threadfence_system();
        Ok(done)
    }

    // ==================================================================
    // gmmap / gmsync
    // ==================================================================

    /// `gmmap`: map a read window starting at `offset`. As in the paper,
    /// the mapping may cover only a prefix of the request — at most to
    /// the end of the containing buffer-cache page — and points directly
    /// into cache memory with zero copies.
    ///
    /// # Errors
    ///
    /// Fails on zero-length requests, offsets at or beyond end of file,
    /// write-once files, or host errors while faulting the page in.
    pub fn mmap<'m>(
        &'m self,
        blk: &mut BlockCtx<'_>,
        fd: &GFd,
        offset: u64,
        len: usize,
    ) -> GpufsResult<GMap<'m>> {
        let file = fd.file();
        if !file.mode().readable() {
            return Err(GpufsError::WriteOnce(file.path().to_owned()));
        }
        let size = file.size();
        if len == 0 || offset >= size {
            return Err(GpufsError::EmptyMapping);
        }
        let ps = self.config.page_size as u64;
        let (page_idx, in_page) = (offset / ps, (offset % ps) as usize);
        let pin = self.pin_page(blk, file, page_idx)?;
        let avail = (self.config.page_size - in_page)
            .min(len)
            .min((size - offset) as usize);
        let ptr = self.frames.frame_ptr(pin.frame) + in_page;
        // SAFETY: the pin blocks eviction and re-initialization; readers
        // of an immutable mapping tolerate concurrent gwrites to other
        // bytes exactly as the paper's relaxed gmmap does.
        let bytes = unsafe { self.gpu.global().slice(ptr, avail) };
        Ok(GMap {
            _pin: pin,
            ptr: bytes.as_ptr(),
            len: avail,
            file_offset: offset,
            _mount: std::marker::PhantomData,
        })
    }

    /// `gmunmap`: release a mapping. Equivalent to dropping it.
    pub fn munmap(&self, blk: &mut BlockCtx<'_>, map: GMap<'_>) {
        blk.advance(self.timings.gpufs_page_op_ns);
        drop(map);
    }

    /// `gmsync`: write one page's modifications back to the host. The
    /// application must coordinate with concurrent updates by other
    /// threadblocks (paper Table 1).
    ///
    /// # Errors
    ///
    /// Fails for modes that never sync, or on host write errors.
    pub fn msync(&self, blk: &mut BlockCtx<'_>, fd: &GFd, offset: u64) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().syncs_to_host() {
            return Err(GpufsError::InvalidMode("gmsync on a non-syncing open mode"));
        }
        let page_idx = offset / self.config.page_size as u64;
        let pin = self.pin_page(blk, file, page_idx)?;
        self.writeback_frame(blk, file, page_idx, pin.frame)?;
        Ok(())
    }

    // ==================================================================
    // gfsync / gunlink / gftruncate / gfstat
    // ==================================================================

    /// `gfsync`: synchronously write every dirty cached page of the file
    /// back to the host page cache. Pages pinned by concurrent accesses
    /// are skipped, as in the paper (Table 1).
    ///
    /// # Errors
    ///
    /// Fails on host write errors.
    pub fn fsync(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().syncs_to_host() {
            return Ok(()); // read-only and O_NOSYNC files have nothing to sync
        }
        self.flush_dirty(blk, file)
    }

    /// `gfsync` followed by a host `fsync(2)`: force the file to stable
    /// storage, the durability level of CPU `fsync` (paper §3.3).
    ///
    /// # Errors
    ///
    /// Fails on host write errors.
    pub fn fsync_durable(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GpufsResult<()> {
        self.fsync(blk, fd)?;
        if fd.file().mode().syncs_to_host() {
            self.rpc(
                blk,
                Request::Fsync {
                    fd: fd.file().host_fd(),
                },
            )?;
        }
        Ok(())
    }

    /// `gunlink`: remove the file on the host; any local buffer-cache
    /// space is reclaimed immediately (paper Table 1).
    ///
    /// # Errors
    ///
    /// Fails if the host cannot resolve or unlink the path.
    pub fn unlink(&self, blk: &mut BlockCtx<'_>, path: &str) -> GpufsResult<()> {
        let resp = self.rpc(
            blk,
            Request::Stat {
                path: path.to_owned(),
            },
        )?;
        let RespOk::Stat { ino, .. } = resp else {
            unreachable!("stat answers Stat")
        };
        self.rpc(
            blk,
            Request::Unlink {
                path: path.to_owned(),
            },
        )?;
        if let Some(open) = self.tables.get_open(path) {
            self.discard_file_cache(&open);
        }
        if let Some(parked) = self.tables.take_closed(ino) {
            self.discard_file_cache(&parked);
            let _ = self.rpc(
                blk,
                Request::Close {
                    fd: parked.host_fd(),
                },
            )?;
        }
        Ok(())
    }

    /// `gftruncate`: truncate to `size` on the host and drop any cached
    /// pages beyond the new end.
    ///
    /// # Errors
    ///
    /// Fails for read-only descriptors or on host errors.
    pub fn ftruncate(&self, blk: &mut BlockCtx<'_>, fd: &GFd, size: u64) -> GpufsResult<()> {
        let file = fd.file();
        if !file.mode().writable() {
            return Err(GpufsError::ReadOnly(file.path().to_owned()));
        }
        self.rpc(
            blk,
            Request::Truncate {
                fd: file.host_fd(),
                size,
            },
        )?;
        file.set_size(size);
        let ps = self.config.page_size as u64;
        let first_dropped = size.div_ceil(ps);
        file.tree().for_each_page(|idx, fp| {
            if idx >= first_dropped {
                self.try_discard_page(fp);
            } else if idx == size / ps && !size.is_multiple_of(ps) {
                // Boundary page: clamp valid data and zero the tail so
                // re-extension reads zeros.
                if let Some(frame) = fp.frame() {
                    let keep = (size % ps) as usize;
                    let pf = self.frames.pframe(frame);
                    let ds = pf.data_size.load(Ordering::Acquire);
                    if ds > keep {
                        self.gpu.global().zero(
                            self.frames.frame_ptr(frame) + keep,
                            self.config.page_size - keep,
                        );
                        pf.data_size.store(keep, Ordering::Release);
                    }
                }
            }
        });
        Ok(())
    }

    /// `gfstat`: file metadata. The size reflects the file size at the
    /// time of the first `gopen` (paper Table 1).
    #[must_use]
    pub fn fstat(&self, blk: &mut BlockCtx<'_>, fd: &GFd) -> GStat {
        blk.advance(self.timings.gpufs_page_op_ns);
        GStat {
            size: fd.file().open_size(),
            ino: fd.file().ino(),
        }
    }

    // ==================================================================
    // Page pinning, initialization, eviction, write-back.
    // ==================================================================

    /// Pin `page_idx` of `file`, faulting it in if absent.
    ///
    /// The lock-free fast path follows the paper's protocol: try the
    /// seqlock-validated lookup, retry `lockfree_retries` times on
    /// contention, then fall back to the fpage lock.
    fn pin_page(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
    ) -> GpufsResult<PagePin> {
        let fp = file.tree().get_or_insert(page_idx);
        let mut failed_attempts = 0u32;
        // An access that ever hit a concurrent update — a seqlock retry,
        // the lock fallback, or an in-flight initialization/eviction —
        // counts as contended; the paper's "locked accesses" column
        // "also includes unlocked retries" (Table 2).
        let mut contended = self.config.force_locked;
        loop {
            let mut via_lock = false;
            let snap =
                if !self.config.force_locked && failed_attempts <= self.config.lockfree_retries {
                    match fp.try_pin_lockfree() {
                        Ok(s) => s,
                        Err(()) => {
                            failed_attempts += 1;
                            contended = true;
                            continue;
                        }
                    }
                } else {
                    via_lock = true;
                    contended = true;
                    fp.pin_locked()
                };
            match snap {
                Snapshot::Pinned(frame) => {
                    if contended {
                        self.counters.locked_accesses.incr();
                    } else {
                        self.counters.lockfree_accesses.incr();
                    }
                    self.counters.hits.incr();
                    let pf = self.frames.pframe(frame);
                    debug_assert_eq!(pf.file_uid.load(Ordering::Relaxed), file.tree().uid());
                    debug_assert_eq!(pf.page_idx.load(Ordering::Relaxed), page_idx);
                    blk.wait_until(pf.ready_at.load(Ordering::Acquire));
                    if via_lock {
                        // A locked traversal serializes on the tree lock.
                        // Under the saturation of a data-parallel kernel
                        // every acquisition waits out the convoy of all
                        // concurrently resident blocks; charge that
                        // analytically (the Figure 7 "locked" ablation).
                        let convoy = self.timings.radix_lock_hold_ns
                            * self.gpu.spec().concurrent_blocks() as u64;
                        blk.advance(convoy);
                    }
                    blk.advance(self.timings.gpufs_hit_ns);
                    return Ok(PagePin::new(Arc::clone(file), fp, frame));
                }
                Snapshot::Empty => {
                    fp.lock();
                    if fp.state() == PageState::Empty {
                        fp.begin_update();
                        fp.set_state(PageState::Initializing);
                        fp.end_update();
                        fp.unlock();
                        return self.initialize_page(blk, file, page_idx, fp);
                    }
                    fp.unlock();
                }
                Snapshot::Initializing => {
                    std::thread::yield_now();
                    contended = true;
                    failed_attempts = 0; // fresh page, start protocol over
                }
            }
        }
    }

    /// Fault in one page: allocate a frame (reclaiming if needed), fetch
    /// or zero-fill it, then publish it Ready. The caller has already
    /// moved the fpage to `Initializing`.
    fn initialize_page(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &Arc<GFile>,
        page_idx: u64,
        fp: &FPage,
    ) -> GpufsResult<PagePin> {
        self.counters.misses.incr();
        // Initialization holds the fpage lock for its state transitions:
        // it is a locked access in the paper's accounting.
        self.counters.locked_accesses.incr();
        let frame = match self.alloc_frame(blk) {
            Ok(f) => f,
            Err(e) => {
                Self::abort_init(fp);
                return Err(e);
            }
        };
        let ps = self.config.page_size;
        let offset = page_idx * ps as u64;
        let ptr = self.frames.frame_ptr(frame);
        let pf = self.frames.pframe(frame);
        pf.file_uid.store(file.tree().uid(), Ordering::Release);
        pf.page_idx.store(page_idx, Ordering::Release);

        // O_NOSYNC temporaries refetch pages that eviction pushed to the
        // host; O_GWRONCE never reads back (§3.2).
        let fetch = (file.mode().fetches_pages() && offset < file.open_size())
            || (file.mode() == GOpenMode::Temp && offset < file.host_valid());
        if fetch {
            let resp = self.rpc(
                blk,
                Request::ReadPage {
                    fd: file.host_fd(),
                    offset,
                    len: ps,
                    dst: ptr,
                    gpu: self.gpu.id(),
                },
            );
            let n = match resp {
                Ok(RespOk::Read { n }) => n,
                Ok(_) => unreachable!("read answers Read"),
                Err(e) => {
                    self.frames.release(frame);
                    Self::abort_init(fp);
                    return Err(e);
                }
            };
            if n < ps {
                self.gpu.global().zero(ptr + n, ps - n);
            }
            pf.data_size.store(n, Ordering::Release);
            if file.mode().needs_pristine() {
                let pristine = match self.alloc_frame(blk) {
                    Ok(f) => f,
                    Err(e) => {
                        self.frames.release(frame);
                        Self::abort_init(fp);
                        return Err(e);
                    }
                };
                self.gpu
                    .global()
                    .copy_within(ptr, self.frames.frame_ptr(pristine), ps);
                blk.advance(bw_time_ns(2 * ps as u64, self.timings.gpu_mem_mb_s));
                pf.set_pristine(Some(pristine));
            }
            pf.set_ready_at(blk.now());
        } else {
            // O_GWRONCE / O_NOSYNC / beyond-EOF pages: "GPUfs never reads
            // pages of such files from the host ... the pristine copy of
            // any file block is all zeros" (§3.1).
            self.gpu.global().zero(ptr, ps);
            blk.advance(bw_time_ns(ps as u64, self.timings.gpu_mem_mb_s));
            pf.data_size.store(0, Ordering::Release);
            // Zero content carries no data dependency: concurrent blocks
            // sharing this page need not synchronize to the initializer's
            // (possibly far-ahead) clock, only to the real mutual
            // exclusion of the initialization itself.
            pf.set_ready_at(0);
        }

        fp.lock();
        fp.begin_update();
        fp.set_frame(Some(frame));
        fp.set_state(PageState::Ready);
        fp.pin_direct();
        fp.end_update();
        fp.unlock();
        blk.advance(self.timings.gpufs_page_op_ns);
        Ok(PagePin::new(Arc::clone(file), fp, frame))
    }

    fn abort_init(fp: &FPage) {
        fp.lock();
        fp.begin_update();
        fp.set_state(PageState::Empty);
        fp.set_frame(None);
        fp.end_update();
        fp.unlock();
    }

    /// Allocate a frame, reclaiming pages when the raw data array is full.
    fn alloc_frame(&self, blk: &mut BlockCtx<'_>) -> GpufsResult<FrameIdx> {
        for _ in 0..RECLAIM_ROUNDS {
            if let Some(frame) = self.frames.alloc() {
                return Ok(frame);
            }
            if self.reclaim(blk, RECLAIM_BATCH)? == 0 {
                std::thread::yield_now();
            }
        }
        Err(GpufsError::CacheExhausted { requested: 1 })
    }

    /// Reclaim up to `want` frames, preferring closed files, then open
    /// read-only files, then writable ones (paper §4.2).
    fn reclaim(&self, blk: &mut BlockCtx<'_>, want: usize) -> GpufsResult<usize> {
        let mut freed = 0usize;
        let mut victims = self.tables.closed_files();
        let closed_count = victims.len();
        victims.extend(self.tables.open_files_by_eviction_priority());
        for (i, victim) in victims.iter().enumerate() {
            let mut err = None;
            victim.tree().for_each_reclaim_candidate(|idx, fp| {
                if freed >= want {
                    return false;
                }
                match self.try_evict_page(blk, victim, idx, fp) {
                    Ok(true) => freed += 1,
                    Ok(false) => {}
                    Err(e) => {
                        err = Some(e);
                        return false;
                    }
                }
                true
            });
            if let Some(e) = err {
                return Err(e);
            }
            // A closed file drained of pages can release its host fd and
            // its table slot entirely.
            if i < closed_count && victim.refcount() == 0 {
                let mut resident = false;
                victim.tree().for_each_page(|_, fp| {
                    resident |= fp.state() != PageState::Empty;
                });
                if !resident && self.tables.remove_closed(victim) {
                    let _ = self.rpc(
                        blk,
                        Request::Close {
                            fd: victim.host_fd(),
                        },
                    )?;
                }
            }
            if freed >= want {
                break;
            }
        }
        Ok(freed)
    }

    /// Try to evict one Ready, unpinned page; writes dirty data back for
    /// syncing modes, discards it for `O_NOSYNC`.
    fn try_evict_page(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &GFile,
        page_idx: u64,
        fp: &FPage,
    ) -> GpufsResult<bool> {
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            return Ok(false);
        }
        fp.lock();
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            fp.unlock();
            return Ok(false);
        }
        let frame = fp.frame().expect("ready page has a frame");
        fp.begin_update();
        fp.set_state(PageState::Initializing); // blocks new pins
        fp.set_frame(None);
        fp.end_update();
        fp.unlock();

        let pf = self.frames.pframe(frame);
        // Everything except read-only data is written back before the
        // frame is reused — including O_NOSYNC temporaries, which the
        // paper spills to the host only "to reclaim GPU buffer cache
        // space" (§3.2).
        if pf.dirty.load(Ordering::Acquire) && file.mode() != GOpenMode::ReadOnly {
            if let Err(e) = self.writeback_frame(blk, file, page_idx, frame) {
                // Restore the page rather than lose data.
                fp.lock();
                fp.begin_update();
                fp.set_frame(Some(frame));
                fp.set_state(PageState::Ready);
                fp.end_update();
                fp.unlock();
                return Err(e);
            }
        }
        if let Some(pristine) = pf.pristine_frame() {
            self.frames.release(pristine);
        }
        self.frames.release(frame);
        fp.lock();
        fp.begin_update();
        fp.set_state(PageState::Empty);
        fp.end_update();
        fp.unlock();
        self.counters.pages_reclaimed.incr();
        Ok(true)
    }

    /// Drop a page without write-back (stale cache, unlink, temp close).
    /// Pinned pages are skipped.
    fn try_discard_page(&self, fp: &FPage) -> bool {
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            return false;
        }
        fp.lock();
        if fp.state() != PageState::Ready || fp.refs() > 0 {
            fp.unlock();
            return false;
        }
        let frame = fp.frame().expect("ready page has a frame");
        fp.begin_update();
        fp.set_frame(None);
        fp.set_state(PageState::Empty);
        fp.end_update();
        fp.unlock();
        let pf = self.frames.pframe(frame);
        if let Some(pristine) = pf.pristine_frame() {
            self.frames.release(pristine);
        }
        self.frames.release(frame);
        true
    }

    fn discard_file_cache(&self, file: &GFile) {
        file.tree().for_each_page(|_, fp| {
            self.try_discard_page(fp);
        });
    }

    /// Write back every dirty, unpinned page of `file`.
    fn flush_dirty(&self, blk: &mut BlockCtx<'_>, file: &Arc<GFile>) -> GpufsResult<()> {
        let mut dirty_pages = Vec::new();
        file.tree().for_each_page(|idx, fp| {
            if fp.state() == PageState::Ready {
                if let Some(frame) = fp.frame() {
                    if self.frames.pframe(frame).dirty.load(Ordering::Acquire) {
                        dirty_pages.push(idx);
                    }
                }
            }
        });
        for idx in dirty_pages {
            // Pin to hold the frame across the write-back.
            let pin = self.pin_page(blk, file, idx)?;
            self.writeback_frame(blk, file, idx, pin.frame)?;
        }
        Ok(())
    }

    /// Compute the modified extents of one page and ship them to the
    /// host: a byte diff against the pristine copy for read-write files,
    /// or against zeros for `O_GWRONCE` (paper §3.1).
    fn writeback_frame(
        &self,
        blk: &mut BlockCtx<'_>,
        file: &GFile,
        page_idx: u64,
        frame: FrameIdx,
    ) -> GpufsResult<usize> {
        let pf = self.frames.pframe(frame);
        if !pf.dirty.load(Ordering::Acquire) {
            return Ok(0);
        }
        let ds = pf.data_size.load(Ordering::Acquire);
        let ptr = self.frames.frame_ptr(frame);
        // SAFETY: the caller holds a pin (or has detached the frame from
        // its fpage), so the frame cannot be reused; concurrent writers
        // to the same page must coordinate with sync, per Table 1.
        let working = unsafe { self.gpu.global().slice(ptr, ds) };
        let extents: Extents = match file.mode() {
            GOpenMode::WriteOnce => {
                blk.advance(bw_time_ns(ds as u64, self.timings.gpu_mem_mb_s));
                nonzero_extents(working, DIFF_MERGE_GAP)
            }
            GOpenMode::ReadWrite => match pf.pristine_frame() {
                Some(pristine_frame) => {
                    let pptr = self.frames.frame_ptr(pristine_frame);
                    // SAFETY: pristine frames are only touched by sync
                    // paths, serialized by the page pin / detachment above.
                    let pristine = unsafe { self.gpu.global().slice(pptr, ds) };
                    blk.advance(bw_time_ns(2 * ds as u64, self.timings.gpu_mem_mb_s));
                    diff_extents(working, pristine, DIFF_MERGE_GAP)
                }
                None => {
                    // A page that never existed on the host (beyond EOF at
                    // open) has an implicitly all-zero pristine copy.
                    blk.advance(bw_time_ns(ds as u64, self.timings.gpu_mem_mb_s));
                    nonzero_extents(working, DIFF_MERGE_GAP)
                }
            },
            // A spilled temporary page has no pristine copy and no
            // written-zeros hazard to exploit: ship the whole valid prefix.
            GOpenMode::Temp => vec![(0, ds as u32)],
            GOpenMode::ReadOnly => Vec::new(),
        };
        pf.dirty.store(false, Ordering::Release);
        if extents.is_empty() {
            return Ok(0);
        }
        let resp = self.rpc(
            blk,
            Request::WriteExtents {
                fd: file.host_fd(),
                src: ptr,
                page_offset: page_idx * self.config.page_size as u64,
                extents,
                gpu: self.gpu.id(),
            },
        )?;
        let RespOk::Wrote { n, generation } = resp else {
            unreachable!("write answers Wrote")
        };
        self.counters.writebacks.incr();
        let page_start = page_idx * self.config.page_size as u64;
        file.mark_host_valid(page_start + ds as u64);
        // Our own propagated writes bumped the host generation; observe it
        // so they do not read as a foreign invalidation on reopen.
        file.observe_generation(generation);
        if file.mode() == GOpenMode::ReadWrite {
            // Refresh the pristine copy: future diffs are relative to the
            // state just propagated.
            if let Some(pristine_frame) = pf.pristine_frame() {
                self.gpu
                    .global()
                    .copy_within(ptr, self.frames.frame_ptr(pristine_frame), ds);
                blk.advance(bw_time_ns(2 * ds as u64, self.timings.gpu_mem_mb_s));
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{GpuSpec, Grid};
    use hostfs::{HostFs, HostFsConfig};

    struct Rig {
        fs: Arc<HostFs>,
        host: GpufsHost,
        gpus: Vec<Arc<Gpu>>,
    }

    fn rig(n_gpus: usize) -> Rig {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpus: Vec<Arc<Gpu>> = (0..n_gpus)
            .map(|i| Arc::new(Gpu::new(i, GpuSpec::small_test())))
            .collect();
        let host = GpufsHost::new(Arc::clone(&fs), gpus.clone());
        Rig { fs, host, gpus }
    }

    /// Run `kernel` as a single threadblock on GPU 0.
    fn run_block(r: &Rig, kernel: impl Fn(&mut BlockCtx<'_>) + Sync) {
        r.gpus[0].launch(Grid::new(1, 32), 0, kernel);
    }

    #[test]
    fn read_spanning_pages() {
        let r = rig(1);
        let content: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        r.fs.create("/f", &content).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap(); // 4K pages
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 20_000];
            let n = mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert_eq!(n, 20_000);
            assert_eq!(buf, content);
            // Offset read crossing a page boundary.
            let mut small = vec![0u8; 100];
            let n = mount.read(blk, &fd, 4096 - 50, &mut small).unwrap();
            assert_eq!(n, 100);
            assert_eq!(small, content[4096 - 50..4096 + 50]);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn read_past_eof_is_short() {
        let r = rig(1);
        r.fs.create("/f", &[9u8; 100]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 64];
            assert_eq!(mount.read(blk, &fd, 80, &mut buf).unwrap(), 20);
            assert_eq!(mount.read(blk, &fd, 100, &mut buf).unwrap(), 0);
            assert_eq!(mount.read(blk, &fd, 5000, &mut buf).unwrap(), 0);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn close_is_decoupled_from_sync() {
        let r = rig(1);
        r.fs.create("/out", &[0u8; 64]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/out", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, b"dirty").unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/out", 0).unwrap();
        assert_eq!(&data[..5], &[0u8; 5], "gclose must not write back");

        run_block(&r, |blk| {
            let fd = mount.open(blk, "/out", GOpenMode::ReadWrite).unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/out", 0).unwrap();
        assert_eq!(&data[..5], b"dirty", "gfsync propagates");
    }

    #[test]
    fn closed_file_table_revives_cache_without_host_reads() {
        let r = rig(1);
        r.fs.create("/f", &[7u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let h2d_before = r.host.stats().bytes_h2d.get();
        let misses_before = mount.counters().misses.get();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert!(buf.iter().all(|&b| b == 7));
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(
            r.host.stats().bytes_h2d.get(),
            h2d_before,
            "revived: no refetch"
        );
        assert_eq!(
            mount.counters().misses.get(),
            misses_before,
            "all hits after revival"
        );
    }

    #[test]
    fn host_write_invalidates_closed_cache_lazily() {
        let r = rig(1);
        r.fs.create("/f", &[1u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 16];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
        });
        // A CPU process rewrites the file (bumps the generation).
        let (hfd, t) = r.fs.open("/f", hostfs::OpenFlags::read_write(), 0).unwrap();
        r.fs.pwrite(hfd, 0, &[2u8; 4096], t).unwrap();
        r.fs.close(hfd).unwrap();
        // Reopen on the GPU: stale cache must be dropped, fresh data read.
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/f", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 16];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert!(
                buf.iter().all(|&b| b == 2),
                "stale page served after host write"
            );
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn write_once_diffs_against_zeros() {
        let r = rig(1);
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/wonce", GOpenMode::WriteOnce).unwrap();
            mount.write(blk, &fd, 10, b"abc").unwrap();
            mount.write(blk, &fd, 100, b"xyz").unwrap();
            // Reading a write-once file is forbidden.
            let mut buf = [0u8; 4];
            assert!(matches!(
                mount.read(blk, &fd, 0, &mut buf),
                Err(GpufsError::WriteOnce(_))
            ));
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/wonce", 0).unwrap();
        assert_eq!(&data[10..13], b"abc");
        assert_eq!(&data[100..103], b"xyz");
        assert!(data[..10].iter().all(|&b| b == 0));
    }

    #[test]
    fn concurrent_gpu_writers_merge_disjoint_ranges() {
        // Two GPUs write disjoint halves of one page of a shared file via
        // the diff-and-merge protocol (the paper's §3.1 extension).
        let r = rig(2);
        r.fs.create("/shared", &[0u8; 4096]).unwrap();
        let m0 = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        let m1 = r.host.mount(1, GpufsConfig::small_test()).unwrap();
        let work = |mount: &Arc<GpuFsMount>, off: u64, byte: u8| {
            let mount = Arc::clone(mount);
            move |blk: &mut BlockCtx<'_>| {
                let fd = mount.open(blk, "/shared", GOpenMode::ReadWrite).unwrap();
                mount.write(blk, &fd, off, &[byte; 1024]).unwrap();
                mount.fsync(blk, &fd).unwrap();
                mount.close(blk, fd).unwrap();
            }
        };
        std::thread::scope(|s| {
            let g0 = &r.gpus[0];
            let g1 = &r.gpus[1];
            let k0 = work(&m0, 0, 0xaa);
            let k1 = work(&m1, 2048, 0xbb);
            s.spawn(move || g0.launch(Grid::new(1, 32), 0, k0));
            s.spawn(move || g1.launch(Grid::new(1, 32), 0, k1));
        });
        let (data, _) = r.fs.read_whole("/shared", 0).unwrap();
        assert!(data[..1024].iter().all(|&b| b == 0xaa), "gpu0's half");
        assert!(data[2048..3072].iter().all(|&b| b == 0xbb), "gpu1's half");
        assert!(data[1024..2048].iter().all(|&b| b == 0), "untouched middle");
    }

    #[test]
    fn temp_files_spill_and_refetch_under_pressure() {
        let r = rig(1);
        // 8 frames of 4K: a 64K temp file cannot stay resident.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 8 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/tmp_scratch", GOpenMode::Temp).unwrap();
            for page in 0..16u64 {
                let payload = [page as u8 + 1; 4096];
                mount.write(blk, &fd, page * 4096, &payload).unwrap();
            }
            // Read everything back: early pages were evicted to the host
            // and must be refetched transparently.
            for page in 0..16u64 {
                let mut buf = [0u8; 4096];
                let n = mount.read(blk, &fd, page * 4096, &mut buf).unwrap();
                assert_eq!(n, 4096);
                assert!(
                    buf.iter().all(|&b| b == page as u8 + 1),
                    "page {page} corrupted after spill/refetch"
                );
            }
            mount.close(blk, fd).unwrap();
        });
        assert!(
            mount.counters().pages_reclaimed.get() > 0,
            "pressure must evict"
        );
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let r = rig(1);
        let mount = r.host.mount(0, GpufsConfig::new(4096, 4 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/big_out", GOpenMode::WriteOnce).unwrap();
            for page in 0..12u64 {
                mount.write(blk, &fd, page * 4096, &[0x5au8; 4096]).unwrap();
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/big_out", 0).unwrap();
        assert_eq!(data.len(), 12 * 4096);
        assert!(data.iter().all(|&b| b == 0x5a));
        assert!(mount.counters().pages_reclaimed.get() > 0);
    }

    #[test]
    fn mmap_returns_prefix_of_page() {
        let r = rig(1);
        let content: Vec<u8> = (0..8192u32).map(|i| (i % 250) as u8).collect();
        r.fs.create("/m", &content).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/m", GOpenMode::ReadOnly).unwrap();
            // Request 8K starting 100 bytes into page 0: only the page
            // remainder maps.
            let map = mount.mmap(blk, &fd, 100, 8192).unwrap();
            assert_eq!(map.len(), 4096 - 100);
            assert_eq!(map.file_offset(), 100);
            assert_eq!(map.bytes(), &content[100..4096]);
            mount.munmap(blk, map);
            // Mapping beyond EOF fails.
            assert!(matches!(
                mount.mmap(blk, &fd, 10_000, 1),
                Err(GpufsError::EmptyMapping)
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn pinned_mapping_blocks_eviction() {
        let r = rig(1);
        r.fs.create("/pin", &[3u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 2 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/pin", GOpenMode::ReadOnly).unwrap();
            let map = mount.mmap(blk, &fd, 0, 4096).unwrap();
            // Burn through the other frame repeatedly with a second file;
            // the pinned page must survive.
            let fd2 = mount.open(blk, "/pin2", GOpenMode::Temp).unwrap();
            for page in 0..6u64 {
                mount.write(blk, &fd2, page * 4096, &[9u8; 4096]).unwrap();
            }
            assert!(map.bytes().iter().all(|&b| b == 3));
            mount.munmap(blk, map);
            mount.close(blk, fd2).unwrap();
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn gmsync_pushes_one_page() {
        let r = rig(1);
        r.fs.create("/ms", &[0u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ms", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, &[1u8; 4096]).unwrap();
            mount.write(blk, &fd, 4096, &[2u8; 4096]).unwrap();
            mount.msync(blk, &fd, 0).unwrap(); // only page 0
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/ms", 0).unwrap();
        assert!(data[..4096].iter().all(|&b| b == 1), "page 0 synced");
        assert!(data[4096..].iter().all(|&b| b == 0), "page 1 not synced");
    }

    #[test]
    fn unlink_reclaims_cache_immediately() {
        let r = rig(1);
        r.fs.create("/gone", &[1u8; 8192]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/gone", GOpenMode::ReadOnly).unwrap();
            let mut buf = [0u8; 8192];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            let free_before = mount.free_frames();
            mount.unlink(blk, "/gone").unwrap();
            assert!(
                mount.free_frames() > free_before,
                "buffer space reclaimed now"
            );
            mount.close(blk, fd).unwrap();
        });
        assert!(!r.fs.exists("/gone"));
    }

    #[test]
    fn ftruncate_drops_tail_pages() {
        let r = rig(1);
        r.fs.create("/tr", &[5u8; 12288]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/tr", GOpenMode::ReadWrite).unwrap();
            let mut buf = [0u8; 12288];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.ftruncate(blk, &fd, 6000).unwrap();
            let mut buf = [0u8; 12288];
            let n = mount.read(blk, &fd, 0, &mut buf).unwrap();
            assert_eq!(n, 6000);
            assert!(buf[..6000].iter().all(|&b| b == 5));
            mount.close(blk, fd).unwrap();
        });
        assert_eq!(r.fs.stat("/tr").unwrap().size, 6000);
    }

    #[test]
    fn fstat_reports_size_at_open() {
        let r = rig(1);
        r.fs.create("/st", &[1u8; 1000]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/st", GOpenMode::ReadWrite).unwrap();
            assert_eq!(mount.fstat(blk, &fd).size, 1000);
            mount.write(blk, &fd, 2000, b"grow").unwrap();
            assert_eq!(mount.fstat(blk, &fd).size, 1000, "gfstat is size-at-open");
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn conflicting_open_modes_error() {
        let r = rig(1);
        r.fs.create("/c", b"x").unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/c", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.open(blk, "/c", GOpenMode::ReadWrite),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn write_to_read_only_fd_errors() {
        let r = rig(1);
        r.fs.create("/ro", b"x").unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ro", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.write(blk, &fd, 0, b"y"),
                Err(GpufsError::ReadOnly(_))
            ));
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn many_blocks_share_one_descriptor_and_refcount() {
        let r = rig(1);
        r.fs.create("/many", &[1u8; 65536]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::new(4096, 64 * 4096)).unwrap();
        // 32 blocks open/read/close the same file concurrently.
        r.gpus[0].launch(Grid::new(32, 64), 0, |blk| {
            let fd = mount.open(blk, "/many", GOpenMode::ReadOnly).unwrap();
            let off = (blk.block_id() as u64 * 2048) % 65536;
            let mut buf = [0u8; 2048];
            let n = mount.read(blk, &fd, off, &mut buf).unwrap();
            assert_eq!(n, 2048);
            assert!(buf.iter().all(|&b| b == 1));
            mount.close(blk, fd).unwrap();
        });
        // All refs dropped: exactly one host open happened (coalescing),
        // unless close raced a reopen (allowed), in which case opens are
        // still far below the 32 a POSIX-per-thread model would issue.
        assert!(
            r.host.stats().opens.get() <= 4,
            "opens = {}",
            r.host.stats().opens.get()
        );
        assert!(mount.counters().lockfree_accesses.get() > 0);
    }

    #[test]
    fn cache_exhaustion_is_reported_not_hung() {
        let r = rig(1);
        r.fs.create("/ex", &[1u8; 16384]).unwrap();
        // Two frames only; pin both via mappings, then fault a third page.
        let mount = r.host.mount(0, GpufsConfig::new(4096, 2 * 4096)).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/ex", GOpenMode::ReadOnly).unwrap();
            let m1 = mount.mmap(blk, &fd, 0, 10).unwrap();
            let m2 = mount.mmap(blk, &fd, 4096, 10).unwrap();
            let err = mount.mmap(blk, &fd, 8192, 10);
            assert!(matches!(err, Err(GpufsError::CacheExhausted { .. })));
            mount.munmap(blk, m1);
            mount.munmap(blk, m2);
            // With the pins gone the same fault now succeeds.
            let m3 = mount.mmap(blk, &fd, 8192, 10).unwrap();
            assert_eq!(m3.bytes()[0], 1);
            mount.munmap(blk, m3);
            mount.close(blk, fd).unwrap();
        });
    }

    #[test]
    fn read_write_pristine_diff_preserves_concurrent_host_bytes() {
        // GPU writes bytes [0,4) of a page; meanwhile the host rewrites
        // bytes [100,104). The GPU's diff-based sync must not revert the
        // host's bytes with its stale pristine copy.
        let r = rig(1);
        r.fs.create("/fs_merge", &[0u8; 4096]).unwrap();
        let mount = r.host.mount(0, GpufsConfig::small_test()).unwrap();
        run_block(&r, |blk| {
            let fd = mount.open(blk, "/fs_merge", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, &[7u8; 4]).unwrap();
            // Host writes concurrently (before the GPU syncs).
            let (hfd, t) =
                r.fs.open("/fs_merge", hostfs::OpenFlags::read_write(), 0)
                    .unwrap();
            r.fs.pwrite(hfd, 100, &[9u8; 4], t).unwrap();
            r.fs.close(hfd).unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = r.fs.read_whole("/fs_merge", 0).unwrap();
        assert_eq!(&data[0..4], &[7u8; 4], "gpu bytes written");
        assert_eq!(&data[100..104], &[9u8; 4], "host bytes preserved by diff");
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use gpusim::{GpuSpec, Grid};
    use hostfs::{HostFs, HostFsConfig};

    fn rig() -> (Arc<HostFs>, GpufsHost, Arc<Gpu>) {
        let fs = Arc::new(HostFs::new(HostFsConfig::default()));
        let gpu = Arc::new(Gpu::new(0, GpuSpec::small_test()));
        let host = GpufsHost::new(Arc::clone(&fs), vec![Arc::clone(&gpu)]);
        (fs, host, gpu)
    }

    #[test]
    fn eviction_prefers_closed_files_over_open_ones() {
        let (fs, host, gpu) = rig();
        fs.create("/closed.bin", &[1u8; 16 * 4096]).unwrap();
        fs.create("/open.bin", &[2u8; 16 * 4096]).unwrap();
        // 48 frames: both files fit, plus some slack to burn.
        let mount = host.mount(0, GpufsConfig::new(4096, 48 * 4096)).unwrap();
        gpu.launch_seeded(Grid::new(1, 32), 0, 1, |blk| {
            // Cache and close the victim-to-be.
            let fd = mount.open(blk, "/closed.bin", GOpenMode::ReadOnly).unwrap();
            let mut buf = vec![0u8; 16 * 4096];
            mount.read(blk, &fd, 0, &mut buf).unwrap();
            mount.close(blk, fd).unwrap();
            // Cache the protected open file.
            let fd_open = mount.open(blk, "/open.bin", GOpenMode::ReadOnly).unwrap();
            mount.read(blk, &fd_open, 0, &mut buf).unwrap();
            let misses_open = mount.counters().misses.get();
            // Exert pressure with a third file until reclaim kicks in.
            let fd_t = mount.open(blk, "/burn.tmp", GOpenMode::Temp).unwrap();
            for page in 0..24u64 {
                mount.write(blk, &fd_t, page * 4096, &[9u8; 4096]).unwrap();
            }
            assert!(
                mount.counters().pages_reclaimed.get() > 0,
                "pressure reclaimed"
            );
            // Re-read the still-open file: every page must still be
            // resident (closed file was sacrificed first).
            let before = mount.counters().misses.get();
            mount.read(blk, &fd_open, 0, &mut buf).unwrap();
            assert_eq!(
                mount.counters().misses.get(),
                before,
                "open file's pages must survive while a closed file exists"
            );
            let _ = misses_open;
            mount.close(blk, fd_t).unwrap();
            mount.close(blk, fd_open).unwrap();
        });
    }

    #[test]
    fn ablation_sync_on_close_writes_back_eagerly() {
        let (fs, host, gpu) = rig();
        fs.create("/posix.out", &[0u8; 64]).unwrap();
        let cfg = GpufsConfig {
            sync_on_close: true,
            ..GpufsConfig::small_test()
        };
        let mount = host.mount(0, cfg).unwrap();
        gpu.launch(Grid::new(1, 32), 0, |blk| {
            let fd = mount.open(blk, "/posix.out", GOpenMode::ReadWrite).unwrap();
            mount.write(blk, &fd, 0, b"eager").unwrap();
            mount.close(blk, fd).unwrap(); // no gfsync!
        });
        let (data, _) = fs.read_whole("/posix.out", 0).unwrap();
        assert_eq!(&data[..5], b"eager", "POSIX ablation must sync on close");
    }

    #[test]
    fn ablation_disable_closed_table_refetches() {
        let (fs, host, gpu) = rig();
        fs.create("/nct.bin", &[3u8; 8192]).unwrap();
        let cfg = GpufsConfig {
            disable_closed_table: true,
            ..GpufsConfig::small_test()
        };
        let mount = host.mount(0, cfg).unwrap();
        let run = |start| {
            gpu.launch(Grid::new(1, 32), start, |blk| {
                let fd = mount.open(blk, "/nct.bin", GOpenMode::ReadOnly).unwrap();
                let mut buf = [0u8; 8192];
                mount.read(blk, &fd, 0, &mut buf).unwrap();
                assert!(buf.iter().all(|&b| b == 3));
                mount.close(blk, fd).unwrap();
            })
        };
        let k1 = run(0);
        let h2d = host.stats().bytes_h2d.get();
        run(k1.end);
        assert!(
            host.stats().bytes_h2d.get() > h2d,
            "without the closed-file table the reopen must refetch"
        );
    }

    #[test]
    fn msync_rejects_temp_and_read_only_modes() {
        let (fs, host, gpu) = rig();
        fs.create("/r", &[0u8; 64]).unwrap();
        let mount = host.mount(0, GpufsConfig::small_test()).unwrap();
        gpu.launch(Grid::new(1, 32), 0, |blk| {
            let ro = mount.open(blk, "/r", GOpenMode::ReadOnly).unwrap();
            assert!(matches!(
                mount.msync(blk, &ro, 0),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, ro).unwrap();
            let tmp = mount.open(blk, "/t", GOpenMode::Temp).unwrap();
            assert!(matches!(
                mount.msync(blk, &tmp, 0),
                Err(GpufsError::InvalidMode(_))
            ));
            mount.close(blk, tmp).unwrap();
        });
    }

    #[test]
    fn concurrent_blocks_write_disjoint_ranges_of_one_page() {
        // False sharing within one page: 8 blocks write disjoint 512-byte
        // slices of a single 4 KB page; the byte diff must merge all of
        // them on the host (paper §3.1's motivating case).
        let (fs, host, gpu) = rig();
        fs.create("/false_share", &[0u8; 4096]).unwrap();
        let mount = host.mount(0, GpufsConfig::small_test()).unwrap();
        gpu.launch(Grid::new(8, 32), 0, |blk| {
            let fd = mount
                .open(blk, "/false_share", GOpenMode::ReadWrite)
                .unwrap();
            let off = blk.block_id() as u64 * 512;
            mount
                .write(blk, &fd, off, &[blk.block_id() as u8 + 1; 512])
                .unwrap();
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = fs.read_whole("/false_share", 0).unwrap();
        for b in 0..8usize {
            assert!(
                data[b * 512..(b + 1) * 512]
                    .iter()
                    .all(|&x| x == b as u8 + 1),
                "slice {b} lost to false sharing"
            );
        }
    }

    #[test]
    fn stress_mixed_readers_and_writers_under_pressure() {
        let (fs, host, gpu) = rig();
        // First half of the file is read-shared; second half is written,
        // one disjoint 4 KB region per block (concurrent access to
        // disjoint ranges is the documented contract, as on real GPUs).
        let base: Vec<u8> = (0..128 * 1024u32).map(|i| (i % 199) as u8).collect();
        fs.create("/mix", &base).unwrap();
        // 8 frames of 4 KB against a 128 KB file: constant eviction.
        let mount = host.mount(0, GpufsConfig::new(4096, 8 * 4096)).unwrap();
        gpu.launch(Grid::new(16, 32), 0, |blk| {
            let fd = mount.open(blk, "/mix", GOpenMode::ReadWrite).unwrap();
            let my = blk.block_id() as u64;
            mount
                .write(blk, &fd, (16 + my) * 4096, &[my as u8 + 100; 4096])
                .unwrap();
            let mut buf = vec![0u8; 2048];
            for step in 0..8u64 {
                let off = ((my + step) % 16) * 4096 + 1024;
                let n = mount.read(blk, &fd, off, &mut buf).unwrap();
                assert_eq!(n, 2048);
                assert_eq!(&buf[..], &base[off as usize..off as usize + 2048]);
            }
            mount.fsync(blk, &fd).unwrap();
            mount.close(blk, fd).unwrap();
        });
        let (data, _) = fs.read_whole("/mix", 0).unwrap();
        for b in 0..16usize {
            let off = (16 + b) * 4096;
            assert!(
                data[off..off + 4096].iter().all(|&x| x == b as u8 + 100),
                "region {b} lost under eviction pressure"
            );
        }
        assert!(mount.counters().pages_reclaimed.get() > 0);
    }
}
