//! The GPU-side GPUfs mount: composition glue for the layered stack.
//!
//! A [`GpuFsMount`] owns one GPU's GPUfs instance and wires the paper's
//! layers together (Figure 2):
//!
//! * the **API layer** in [`crate::api`] — `gopen`/`gread`/`gwrite`/
//!   `gmmap`/`gfsync`/… entry points and the [`crate::GFd`] /
//!   [`crate::GMap`] / [`crate::GStat`] handle types;
//! * **open-file state** in [`crate::ofile`] — open/close coalescing and
//!   the open/closed file tables of [`crate::table`];
//! * the **buffer cache** in [`crate::cache`] — paging
//!   ([`crate::cache::paging`]), frame reclaim
//!   ([`crate::cache::reclaim`]), and diff-based write-back
//!   ([`crate::cache::writeback`]) over the raw data array and per-file
//!   radix trees;
//! * the **RPC channel** in [`crate::rpc`] to the host daemon of
//!   [`crate::daemon`].
//!
//! This file deliberately holds no file-system logic: only the struct,
//! its constructor, read-only accessors, and the one RPC helper every
//! layer above shares. Kernels call the `g*` API through the mount,
//! passing their [`BlockCtx`] so GPUfs can charge virtual time and honour
//! the prototype's threadblock-granularity calling convention: a call is
//! made once per threadblock, at the same point, with the same arguments
//! (paper §4).
//!
//! No daemon threads run on the GPU: paging and write-back happen on the
//! calling threadblock ("GPUfs code hijacking the calling thread to
//! perform paging", §4.2), preserving the pay-as-you-go principle of §3.4.

// lint:allow adhoc-counter -- imports the two time-frontier words below
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use gpusim::{BlockCtx, Gpu};
use simtime::Timings;

use crate::cache::{CacheCounters, FrameArena, FrameIdx};
use crate::config::GpufsConfig;
use crate::daemon::GpufsHost;
use crate::error::GpufsResult;
use crate::rpc::{Request, RespOk, RpcHub, TenantId};
use crate::table::Tables;

/// Size of the per-mount slot→tenant map. Threadblock slots map to a
/// tenant through `slot % TENANT_SLOT_MAP`, so any realistic grid gets a
/// stable per-slot assignment without unbounded storage.
const TENANT_SLOT_MAP: usize = 1024;

/// Mount-wide dirty-page accounting shared by the foreground write path,
/// the background flusher, and the reclaim/discard paths.
///
/// `pages` counts buffer-cache pages whose `PFrame::dirty` bit is set; it
/// moves on exactly the transitions that flip that bit (arm on write,
/// clear on gather, re-arm on a failed write-back batch, clear on
/// discard), so `pages == 0` means no page in the cache carries
/// unwritten data. `flush_vtime` is the virtual time at which the
/// background flusher last observed the ledger at or below the low
/// watermark — throttled writers resume no earlier than this.
#[derive(Debug, Default)]
pub(crate) struct DirtyLedger {
    pub(crate) pages: AtomicUsize,
    // lint:allow adhoc-counter -- a virtual-time frontier, not a tally
    pub(crate) flush_vtime: AtomicU64,
}

/// A virtual-time execution lane: the clock/identity surface the paging
/// and write-back layers need from whoever is driving them.
///
/// Threadblocks ([`BlockCtx`]) are the usual lane — every `g*` call runs
/// on the faulting block, pay-as-you-go (§3.4). The background flusher is
/// the one exception: it runs on a host-side thread with its own
/// [`simtime::Clock`], issuing at the mount's virtual frontier, so the
/// shared write-back code is generic over this trait instead of taking a
/// `BlockCtx` outright.
pub(crate) trait Lane {
    fn now(&self) -> u64;
    fn advance(&mut self, dur: u64);
    fn wait_until(&mut self, t: u64);
    /// RPC channel slot (threadblock slot for blocks).
    fn lane_id(&self) -> usize;
}

impl Lane for BlockCtx<'_> {
    fn now(&self) -> u64 {
        BlockCtx::now(self)
    }
    fn advance(&mut self, dur: u64) {
        BlockCtx::advance(self, dur);
    }
    fn wait_until(&mut self, t: u64) {
        BlockCtx::wait_until(self, t);
    }
    fn lane_id(&self) -> usize {
        self.block_id()
    }
}

/// One GPU's GPUfs instance (see module docs).
pub struct GpuFsMount {
    pub(crate) gpu: Arc<Gpu>,
    /// This mount's identity in the host consistency registry. Defaults
    /// to the GPU id; cross-host fleets override it so two hosts' GPU 0s
    /// register as distinct cachers (the GPU id stays positional — DMA
    /// engines, stat sheets — while this is the coherence name).
    pub(crate) coherence_id: usize,
    pub(crate) hub: Arc<RpcHub>,
    /// The host's span tracer (cloned handle): the `g*` entry points and
    /// the background flusher open their trace roots on it.
    pub(crate) tracer: obs::Tracer,
    pub(crate) timings: Timings,
    pub(crate) config: GpufsConfig,
    pub(crate) frames: FrameArena,
    pub(crate) tables: Tables,
    /// The aggregate cache sheet: a read-only [`CacheCounters::sum_of`]
    /// view over [`GpuFsMount::tenant_counters`]. Writing it panics —
    /// updates go through [`GpuFsMount::count_for`] to the faulting
    /// lane's tenant leaf, and this view reads through to those cells.
    pub(crate) counters: CacheCounters,
    /// Per-tenant leaf sheets — the only cache counters ever written
    /// (single-tenant mounts have exactly one, and the aggregate view
    /// equals it).
    pub(crate) tenant_counters: Vec<CacheCounters>,
    /// Slot→tenant assignment (`slot % TENANT_SLOT_MAP`), default all
    /// tenant 0. Kernels partition their blocks with
    /// [`GpuFsMount::set_tenant`] before faulting.
    tenant_of_slot: Box<[AtomicUsize]>,
    /// The consistency layer's per-file generation table, exported by the
    /// host into write-shared memory. Reading it costs one PCIe access
    /// and no daemon round-trip, which is what keeps closed-file-table
    /// revival cheap (paper §4.1: reopen must avoid CPU communication).
    pub(crate) host_fs: Arc<hostfs::HostFs>,
    /// Dirty-page ledger driving the async write-back throttle.
    pub(crate) dirty: DirtyLedger,
    /// Latest virtual time any threadblock has reached on this mount.
    /// The background flusher issues its RPCs at this frontier so its
    /// traffic lands "now" rather than in the virtual past.
    // lint:allow adhoc-counter -- a virtual-time frontier, not a tally
    pub(crate) virtual_frontier: AtomicU64,
    /// Background flusher control: set to request shutdown, joined on
    /// drop. `None` when async write-back is off.
    pub(crate) flusher_stop: Arc<std::sync::atomic::AtomicBool>,
    pub(crate) flusher: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for GpuFsMount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuFsMount")
            .field("gpu", &self.gpu.id())
            .field("page_size", &self.config.page_size)
            .field("frames", &self.frames.num_frames())
            .field("free_frames", &self.frames.free_frames())
            .finish()
    }
}

impl GpufsHost {
    /// Create a GPUfs mount on GPU `gpu_id` with `config`.
    ///
    /// Allocates the raw data array in the GPU's global memory.
    ///
    /// # Errors
    ///
    /// Fails if the GPU cannot hold the configured buffer cache, or if
    /// the mount's host-side knobs ([`GpufsConfig::rpc_channels`],
    /// [`GpufsConfig::daemon_workers`], [`GpufsConfig::io_chunk_pages`],
    /// [`GpufsConfig::io_depth`]) disagree with the daemon this host was
    /// started with — all four are daemon state, so a config that names
    /// different values would be a silent no-op; build the host with
    /// [`GpufsHost::with_config`] (or matching
    /// [`GpufsHost::with_concurrency`] values) instead.
    pub fn mount(&self, gpu_id: usize, config: GpufsConfig) -> GpufsResult<Arc<GpuFsMount>> {
        self.mount_with_coherence_id(gpu_id, config, gpu_id)
    }

    /// [`GpufsHost::mount`] with an explicit consistency-registry
    /// identity. Cross-host fleets use this to keep every mount's
    /// registration unique when positional GPU ids repeat per host.
    pub(crate) fn mount_with_coherence_id(
        &self,
        gpu_id: usize,
        config: GpufsConfig,
        coherence_id: usize,
    ) -> GpufsResult<Arc<GpuFsMount>> {
        if config.rpc_channels.max(1) != self.hub().num_channels()
            || config.daemon_workers.max(1) != self.daemon_workers()
            || config.io_chunk_pages != self.io_chunk_pages()
            || config.io_depth.max(2) != self.io_depth()
        {
            return Err(crate::error::GpufsError::InvalidMode(
                "mount rpc_channels/daemon_workers/io_chunk_pages/io_depth do not \
                 match the host daemon (build the host with GpufsHost::with_config)",
            ));
        }
        // The tenant dispatch knobs are daemon state too: the hub's DRR
        // weights and admission caps were fixed when the host started, and
        // the daemon's per-tenant stat sheets must cover every tenant this
        // mount will name.
        if config.tenant_weights != self.hub().tenant_weights()
            || config.tenant_admission != self.hub().tenant_admission()
            || config.num_tenants() > self.hub().num_tenants()
        {
            return Err(crate::error::GpufsError::InvalidMode(
                "mount tenant_weights/tenant_admission do not match the host \
                 daemon (build the host with GpufsHost::with_config)",
            ));
        }
        let gpu = Arc::clone(&self.gpus()[gpu_id]);
        let frames = FrameArena::with_quotas(
            gpu.global(),
            config.page_size,
            config.num_frames(),
            config.cache_shards,
            config.num_tenants(),
            &config.tenant_frame_quotas,
        )?;
        let tenant_counters: Vec<CacheCounters> = (0..config.num_tenants())
            .map(|_| CacheCounters::new())
            .collect();
        // Aggregate = sum view over the tenant leaves (one write path),
        // and every sheet registers with the host's metrics registry
        // under its place in the label hierarchy.
        let counters = CacheCounters::sum_of(&tenant_counters.iter().collect::<Vec<_>>());
        let gpu_label = obs::Labels::gpu(gpu_id as u32);
        for (t, sheet) in tenant_counters.iter().enumerate() {
            sheet.register(self.registry(), gpu_label.with_tenant(t as u32));
        }
        counters.register(self.registry(), gpu_label);
        let mount = Arc::new(GpuFsMount {
            timings: gpu.timings().clone(),
            hub: Arc::clone(self.hub()),
            tracer: self.tracer().clone(),
            gpu,
            coherence_id,
            config,
            frames,
            tables: Tables::new(),
            counters,
            tenant_counters,
            tenant_of_slot: (0..TENANT_SLOT_MAP).map(|_| AtomicUsize::new(0)).collect(),
            host_fs: Arc::clone(self.fs()),
            dirty: DirtyLedger::default(),
            // lint:allow adhoc-counter -- frontier init, not a counter
            virtual_frontier: AtomicU64::new(0),
            flusher_stop: Arc::new(std::sync::atomic::AtomicBool::new(false)),
            flusher: parking_lot::Mutex::new(None),
        });
        crate::cache::flusher::spawn_if_configured(&mount)?;
        Ok(mount)
    }
}

impl GpuFsMount {
    /// Buffer-cache page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Buffer-cache activity counters.
    #[must_use]
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Buffer-cache activity counters attributed to `tenant` alone
    /// (clamped to the last tenant). Summing over every tenant reproduces
    /// [`GpuFsMount::counters`] counter for counter.
    #[must_use]
    pub fn tenant_counters(&self, tenant: TenantId) -> &CacheCounters {
        &self.tenant_counters[tenant.min(self.tenant_counters.len() - 1)]
    }

    /// Tenant classes this mount distinguishes (≥ 1).
    #[must_use]
    pub fn num_tenants(&self) -> usize {
        self.tenant_counters.len()
    }

    /// Assign threadblock slot `slot` (modulo the slot-map size) to
    /// `tenant`. Every fault, RPC, and cache counter of that slot is
    /// attributed — and scheduled — as that tenant from then on. Slots
    /// default to tenant 0.
    pub fn set_tenant(&self, slot: usize, tenant: TenantId) {
        let tenant = tenant.min(self.num_tenants() - 1);
        self.tenant_of_slot[slot % TENANT_SLOT_MAP].store(tenant, Ordering::Relaxed);
    }

    /// The tenant threadblock slot `slot` is assigned to.
    #[must_use]
    pub fn tenant_of(&self, slot: usize) -> TenantId {
        self.tenant_of_slot[slot % TENANT_SLOT_MAP]
            .load(Ordering::Relaxed)
            .min(self.num_tenants() - 1)
    }

    /// Apply one counter update to the sheet of `lane`'s tenant — the
    /// single attribution path. The aggregate is a sum view over the
    /// tenant leaves, so it reflects this write with no second bump (and
    /// would panic if one were attempted).
    pub(crate) fn count_for(&self, lane: usize, f: impl Fn(&CacheCounters)) {
        f(self.tenant_counters(self.tenant_of(lane)));
    }

    /// Frames currently free in the raw data array.
    #[must_use]
    pub fn free_frames(&self) -> usize {
        self.frames.free_frames()
    }

    /// The GPU this mount serves.
    #[must_use]
    pub fn gpu(&self) -> &Arc<Gpu> {
        &self.gpu
    }

    /// This mount's identity in the host consistency registry (the GPU
    /// id, unless a cross-host fleet assigned a globally unique one).
    #[must_use]
    pub fn coherence_id(&self) -> usize {
        self.coherence_id
    }

    /// Issue one RPC to the host daemon on the calling threadblock's
    /// channel and synchronize the block's clock to the
    /// completion-visibility time.
    ///
    /// Channel assignment is static per threadblock slot (`block id mod
    /// channels`, paper §4.3): blocks resident on different slots post to
    /// independent queues and can have requests in flight simultaneously,
    /// while one block's own synchronous calls stay FIFO.
    pub(crate) fn rpc<L: Lane>(&self, blk: &mut L, req: Request) -> GpufsResult<RespOk> {
        // The span opens before the post so the envelope's captured
        // context names it as parent — the daemon worker's serve span
        // nests under this round-trip. A failed call drops the guard
        // without emitting.
        let sp = obs::span(req.rpc_span_name());
        let issued = blk.now();
        let (ok, t) = self.hub.call(
            blk.lane_id(),
            self.tenant_of(blk.lane_id()),
            self.gpu.id(),
            issued,
            &self.timings,
            req,
        )?;
        blk.wait_until(t);
        self.note_frontier(blk.now());
        sp.finish(issued, blk.now());
        Ok(ok)
    }

    /// Record that a threadblock has reached virtual time `now`, advancing
    /// the mount-wide frontier the background flusher issues at.
    pub(crate) fn note_frontier(&self, now: u64) {
        self.virtual_frontier.fetch_max(now, Ordering::Relaxed);
    }

    /// Return `frame` to shard `hint`'s freelist, settling its dirty bit
    /// against the mount ledger first — the single exit point for frames
    /// whose contents are being discarded. `FrameArena::release` wipes the
    /// page metadata, so the bit must be read here, before the handoff.
    pub(crate) fn retire_frame(&self, hint: usize, frame: FrameIdx) {
        if self
            .frames
            .pframe(frame)
            .dirty
            .swap(false, Ordering::AcqRel)
        {
            self.dirty.pages.fetch_sub(1, Ordering::AcqRel);
        }
        self.frames.release(hint, frame);
    }
}

impl Drop for GpuFsMount {
    fn drop(&mut self) {
        crate::cache::flusher::stop(self);
    }
}
