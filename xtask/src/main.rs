//! Workspace automation tasks (`cargo run -p xtask -- <task>`).
//!
//! The one task today is `lint`: a source-level analysis pass over the
//! workspace enforcing repo invariants that clippy can't express — see
//! [`lint`] for the rule set. CI runs it as its own job; it exits
//! non-zero with one line per finding.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            eprintln!("usage: cargo run -p xtask -- lint [--rules]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint [--rules]");
            ExitCode::FAILURE
        }
    }
}
