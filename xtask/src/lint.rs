//! The `xtask lint` pass: source-level workspace invariants.
//!
//! Seven rules, motivated by the lockcheck layer, the repo's
//! concurrency-bug history (see ISSUE 6 / ARCHITECTURE.md), the
//! cross-host storage tier's layering, and the metrics registry's
//! single-attribution-path design:
//!
//! * **`std-sync`** — no direct `std::sync::{Mutex, RwLock, Condvar}`
//!   anywhere under `crates/`: every lock must go through the
//!   `shims/parking_lot` shim so the lockcheck detector sees it. The
//!   shim itself (under `shims/`) is the one place std locks may live.
//! * **`unwrap`** — no `.unwrap()` / `.expect(` in non-test code under
//!   `crates/core/src/{daemon,cache,cluster}` and `rpc.rs`: the daemon
//!   serves a fleet, and a panic there strands every spinning
//!   threadblock. Handle the error or propagate it.
//! * **`sleep`** — no `thread::sleep` in non-test code under `crates/`
//!   outside the designated backoff helper (`crates/core/src/backoff.rs`):
//!   ad-hoc sleeps hide ordering bugs and skew the virtual clock's
//!   real-time envelope.
//! * **`unsafe-safety`** — every `unsafe` in non-test code under
//!   `crates/` needs a `// SAFETY:` comment (or a `# Safety` doc
//!   section) within the six preceding lines.
//! * **`hot-mutex`** — no `Mutex`/`RwLock`/`parking_lot::` tokens in
//!   the lock-free hot path ([`HOT_LOCKFREE`], currently the paging
//!   layer): the paper's §4.2 protocol keeps `pin_page` mutex-free, and
//!   a convenient slow-path lock quietly reintroduces the Figure-7
//!   convoy. The fpage seqlock (`fp.lock()`) is part of the protocol
//!   and does not trip this rule.
//! * **`proxy-hostfs`** — no `HostFs` token in the non-test host-proxy
//!   code ([`PROXY_NO_HOSTFS`]: the proxy, its page cache, and the
//!   proxy-backed serve path): everything the proxy learns about server
//!   state must arrive through the wire protocol, or the cross-host
//!   split silently degenerates to shared-memory peeking and the
//!   zero-net transparency test stops proving anything.
//! * **`adhoc-counter`** — no raw `AtomicU64` in non-test `crates/core`
//!   code outside the data-plane files ([`ADHOC_COUNTER_ALLOWED`]):
//!   counters belong to `obs::Counter` and the metrics registry, whose
//!   leaf/sum-view split is what makes every per-GPU / per-tenant /
//!   per-host rollup reconcile by construction. A stray atomic counter
//!   is invisible to `Registry::snapshot` and reopens the counter-drift
//!   bugs the registry closed.
//!
//! A finding is fixed or waived, never ignored: waivers are inline
//! `// lint:allow <rule> -- <reason>` comments on the offending line or
//! the line above, and the reason is mandatory. File-scoped waivers live
//! in [`SLEEP_ALLOWED`] below, each with a comment.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files allowed to call `thread::sleep`: the backoff helpers. Every
/// entry needs a justification here — this list is the `sleep` rule's
/// named allowlist.
const SLEEP_ALLOWED: &[&str] = &[
    // The one sanctioned blocking backoff: reclaim's spin-then-sleep
    // loop and any future retry loop route through these helpers, so the
    // "who is allowed to stall a threadblock" question has one answer.
    "crates/core/src/backoff.rs",
];

/// Directories under `crates/core/src/` (plus `rpc.rs`) where the
/// `unwrap` rule applies: the daemon-facing production paths.
const UNWRAP_SCOPE: &[&str] = &[
    "crates/core/src/daemon/",
    "crates/core/src/cache/",
    "crates/core/src/cluster/",
    "crates/core/src/rpc.rs",
];

/// Files whose non-test code must stay mutex-free (the `hot-mutex`
/// rule): the page-lookup hot path. A mutex here puts every concurrent
/// threadblock back in the Figure-7 convoy the lock-free protocol
/// exists to avoid, so introducing one demands an inline waiver with a
/// measured justification.
const HOT_LOCKFREE: &[&str] = &["crates/core/src/cache/paging.rs"];

/// Files on the host side of the wire (the `proxy-hostfs` rule): the
/// proxy, its page cache, and the proxy-backed serve path. None of them
/// may name `HostFs` — the storage server is the sole owner of the file
/// system, and the proxy talks to it only in frames. Reaching around the
/// wire here would un-split the tier while every test keeps passing.
const PROXY_NO_HOSTFS: &[&str] = &[
    "crates/core/src/remote/proxy.rs",
    "crates/core/src/remote/cache.rs",
    "crates/core/src/remote/client.rs",
];

/// Files under `crates/core/src/` where raw `AtomicU64` is data-plane
/// state, not an ad-hoc counter (the `adhoc-counter` rule). Every entry
/// needs a justification here.
const ADHOC_COUNTER_ALLOWED: &[&str] = &[
    // The fpage seqlock version word and the global file-uid mint: the
    // paper's §4.2 concurrency protocol itself, not metrics.
    "crates/core/src/cache/radix.rs",
    // Frame identity/ready-time words read under the seqlock protocol.
    "crates/core/src/cache/frames.rs",
    // File metadata mirrored to GPU-visible memory (size, generation,
    // readahead stream state, flush horizon) — shared state, not tallies.
    "crates/core/src/table.rs",
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    StdSync,
    Unwrap,
    Sleep,
    UnsafeSafety,
    HotMutex,
    ProxyHostFs,
    AdhocCounter,
}

impl Rule {
    fn name(self) -> &'static str {
        match self {
            Rule::StdSync => "std-sync",
            Rule::Unwrap => "unwrap",
            Rule::Sleep => "sleep",
            Rule::UnsafeSafety => "unsafe-safety",
            Rule::HotMutex => "hot-mutex",
            Rule::ProxyHostFs => "proxy-hostfs",
            Rule::AdhocCounter => "adhoc-counter",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug)]
struct Finding {
    path: String,
    line: usize,
    rule: Rule,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Entry point for `cargo run -p xtask -- lint`.
pub fn run(args: &[String]) -> ExitCode {
    if args.iter().any(|a| a == "--rules") {
        print!("{}", RULES_HELP);
        return ExitCode::SUCCESS;
    }
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        scanned += 1;
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        findings.extend(lint_file(&rel, &text));
    }
    if findings.is_empty() {
        println!("xtask lint: {scanned} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {scanned} files (fix, or waive with `// lint:allow <rule> -- <reason>`)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}

const RULES_HELP: &str = "\
xtask lint rules:
  std-sync       no std::sync::{Mutex,RwLock,Condvar} under crates/ (use the
                 parking_lot shim so lockcheck sees every acquisition)
  unwrap         no .unwrap()/.expect( in non-test daemon/cache/cluster/rpc code
  sleep          no thread::sleep under crates/ outside crates/core/src/backoff.rs
  unsafe-safety  every unsafe needs a // SAFETY: comment within 6 lines above
  hot-mutex      no Mutex/RwLock/parking_lot:: in the lock-free page-lookup
                 hot path (crates/core/src/cache/paging.rs) — the fpage
                 seqlock is the only sanctioned lock there
  proxy-hostfs   no HostFs token in non-test host-proxy code
                 (crates/core/src/remote/{proxy,cache,client}.rs) — the
                 proxy reaches the storage server only through the wire
                 protocol, never by touching the file system directly
  adhoc-counter  no raw AtomicU64 in non-test crates/core code outside the
                 data-plane files (radix/frames/table) — counters go through
                 obs::Counter and the registry so every rollup reconciles
waive a finding inline: // lint:allow <rule> -- <reason>   (reason required)
";

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one up from
    // this crate's manifest.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != ".git" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lint one file's text; `rel` is the workspace-relative path used for
/// scoping and reporting.
fn lint_file(rel: &str, text: &str) -> Vec<Finding> {
    let lines: Vec<&str> = text.lines().collect();
    let mut stripper = Stripper::default();
    let code: Vec<String> = lines.iter().map(|l| stripper.code_of(l)).collect();
    let in_test = test_regions(&code);
    let unwrap_scoped = UNWRAP_SCOPE.iter().any(|p| rel.starts_with(p));
    let sleep_allowed = SLEEP_ALLOWED.contains(&rel);
    let hot_lockfree = HOT_LOCKFREE.contains(&rel);
    let proxy_no_hostfs = PROXY_NO_HOSTFS.contains(&rel);
    let adhoc_scoped = rel.starts_with("crates/core/src/") && !ADHOC_COUNTER_ALLOWED.contains(&rel);
    let mut findings = Vec::new();
    for (i, code_line) in code.iter().enumerate() {
        let lineno = i + 1;
        let mut report = |rule: Rule, message: String| {
            if !allowed(&lines, i, rule) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };
        // std-sync applies to test code too: a std lock in a test is just
        // as invisible to the lockcheck detector.
        if let Some(what) = std_sync_use(code_line) {
            report(
                Rule::StdSync,
                format!("direct std::sync::{what}; route it through the parking_lot shim so lockcheck sees it"),
            );
        }
        if in_test[i] {
            continue;
        }
        if unwrap_scoped {
            if code_line.contains(".unwrap()") {
                report(
                    Rule::Unwrap,
                    ".unwrap() in daemon/cache/cluster/rpc production code; handle or propagate"
                        .into(),
                );
            }
            if code_line.contains(".expect(") {
                report(
                    Rule::Unwrap,
                    ".expect( in daemon/cache/cluster/rpc production code; handle or propagate"
                        .into(),
                );
            }
        }
        if !sleep_allowed && code_line.contains("thread::sleep") {
            report(
                Rule::Sleep,
                "thread::sleep outside the backoff helpers (crates/core/src/backoff.rs)".into(),
            );
        }
        if has_word(code_line, "unsafe") && !safety_documented(&lines, &code, i) {
            report(
                Rule::UnsafeSafety,
                "unsafe without a // SAFETY: comment within the 6 preceding lines".into(),
            );
        }
        if hot_lockfree {
            if let Some(what) = mutex_use(code_line) {
                report(
                    Rule::HotMutex,
                    format!(
                        "{what} in the lock-free page-lookup hot path; \
                         pin_page must stay mutex-free (paper §4.2) — \
                         waive only with a measured justification"
                    ),
                );
            }
        }
        if proxy_no_hostfs && has_word(code_line, "HostFs") {
            report(
                Rule::ProxyHostFs,
                "HostFs touched from host-proxy code; the proxy must reach \
                 the storage server only through the wire protocol"
                    .into(),
            );
        }
        if adhoc_scoped && has_word(code_line, "AtomicU64") {
            report(
                Rule::AdhocCounter,
                "raw AtomicU64 in crates/core outside the data-plane files; \
                 counters go through obs::Counter and the registry so every \
                 rollup reconciles — waive only for non-counter shared state"
                    .into(),
            );
        }
    }
    findings
}

/// `Some(token)` when the stripped code line references a mutex-family
/// lock type — any `Mutex`/`RwLock` identifier (std or shim) or a
/// `parking_lot::` path. The fpage seqlock's `fp.lock()` carries none of
/// these tokens, so the paper's own protocol passes untouched.
fn mutex_use(code_line: &str) -> Option<&'static str> {
    for what in ["Mutex", "RwLock"] {
        if has_word(code_line, what) {
            return Some(what);
        }
    }
    code_line
        .contains("parking_lot::")
        .then_some("parking_lot::")
}

/// `Some(name)` when the stripped code line uses a std::sync lock type.
fn std_sync_use(code_line: &str) -> Option<&'static str> {
    for what in ["Mutex", "RwLock", "Condvar"] {
        if code_line.contains(&format!("std::sync::{what}")) {
            return Some(what);
        }
        // `use std::sync::{..., Mutex, ...}` (possibly renamed).
        if let Some(rest) = code_line.trim_start().strip_prefix("use std::sync::") {
            if rest.contains(what) {
                return Some(what);
            }
        }
    }
    None
}

/// Whether line `i` (or the line above) carries a `lint:allow <rule>`
/// waiver *with a reason* (`-- <why>`). Reasonless allows don't count —
/// no silent suppressions.
fn allowed(lines: &[&str], i: usize, rule: Rule) -> bool {
    let pat = format!("lint:allow {}", rule.name());
    let has = |line: &str| {
        line.split(&pat).nth(1).is_some_and(|rest| {
            rest.contains("--")
                && rest
                    .split("--")
                    .nth(1)
                    .is_some_and(|r| !r.trim().is_empty())
        })
    };
    has(lines[i]) || (i > 0 && has(lines[i - 1]))
}

/// Whether an `unsafe` at line `i` is documented. An `unsafe` block (or
/// impl) needs a `SAFETY:` comment on the same line or within the 6
/// above; an `unsafe fn` declaration may instead carry a `# Safety`
/// section anywhere in its contiguous doc-comment/attribute block (which
/// routinely runs longer than 6 lines once `# Panics` etc. are present).
fn safety_documented(lines: &[&str], code: &[String], i: usize) -> bool {
    let lo = i.saturating_sub(6);
    let documents = |l: &str| l.contains("SAFETY:") || l.contains("# Safety");
    if lines[lo..=i].iter().any(|l| documents(l)) {
        return true;
    }
    if !code[i].contains("unsafe fn") {
        return false;
    }
    // Walk the doc/attribute block immediately above the declaration.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = lines[j].trim_start();
        if t.starts_with("///") || t.starts_with("//") || t.starts_with("#[") {
            if documents(t) {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Word-boundary containment check on a stripped code line.
fn has_word(code_line: &str, word: &str) -> bool {
    let bytes = code_line.as_bytes();
    let mut from = 0;
    while let Some(pos) = code_line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let pre_ok =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let post_ok =
            end == bytes.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Mark the lines belonging to `#[cfg(test)]` items (the attribute, any
/// stacked attributes, and the item's body up to its matching close).
/// Operates on stripped code lines, so braces in strings/comments don't
/// corrupt the depth count.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let trimmed = code[i].trim_start();
        let is_cfg_test =
            trimmed.starts_with("#[cfg(test)]") || trimmed.starts_with("#[cfg(all(test");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        in_test[i] = true;
        let mut depth = 0i64;
        let mut opened = false;
        let mut j = i + 1;
        // Cover stacked attributes and the item header, then balance
        // braces to the end of the item. A braceless item (`mod x;`)
        // ends at the first `;` before any `{`.
        while j < code.len() {
            in_test[j] = true;
            for ch in code[j].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && depth == 0 => {
                        depth = i64::MIN; // sentinel: item over
                        break;
                    }
                    _ => {}
                }
            }
            if depth == i64::MIN || (opened && depth <= 0) {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

/// Per-file comment/string stripper: returns each line with comment text
/// and string/char-literal contents blanked, carrying block-comment and
/// raw/normal string state across lines.
#[derive(Default)]
struct Stripper {
    /// Nesting depth of `/* */` block comments.
    comment_depth: u32,
    /// `Some(hashes)` while inside a raw string `r#"..."#`.
    raw_string: Option<u32>,
    /// Inside a normal `"` string that continued past a line end.
    in_string: bool,
}

impl Stripper {
    fn code_of(&mut self, line: &str) -> String {
        let chars: Vec<char> = line.chars().collect();
        let mut out = String::with_capacity(line.len());
        let mut i = 0;
        while i < chars.len() {
            if self.comment_depth > 0 {
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    self.comment_depth -= 1;
                    i += 2;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    self.comment_depth += 1;
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            if let Some(hashes) = self.raw_string {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    self.raw_string = None;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
                out.push(' ');
                continue;
            }
            if self.in_string {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        self.in_string = false;
                        i += 1;
                    }
                    _ => i += 1,
                }
                out.push(' ');
                continue;
            }
            match chars[i] {
                '/' if chars.get(i + 1) == Some(&'/') => break, // line comment
                '/' if chars.get(i + 1) == Some(&'*') => {
                    self.comment_depth += 1;
                    out.push(' ');
                    i += 2;
                }
                'r' if is_raw_string_start(&chars, i) => {
                    let hashes = count_hashes(&chars, i + 1);
                    self.raw_string = Some(hashes);
                    out.push(' ');
                    i += 2 + hashes as usize; // r, hashes, opening quote
                }
                '"' => {
                    self.in_string = true;
                    out.push(' ');
                    i += 1;
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes with
                    // `'` within a few chars; a lifetime never does.
                    if let Some(len) = char_literal_len(&chars, i) {
                        out.push(' ');
                        i += len;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                c => {
                    out.push(c);
                    i += 1;
                }
            }
        }
        out
    }
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // `r"` or `r#...#"`, not preceded by an identifier char (so `for`,
    // `attr` etc. don't trigger).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i + 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn count_hashes(chars: &[char], mut i: usize) -> u32 {
    let mut n = 0;
    while chars.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    n
}

fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `i` (which holds `'`), its total length;
/// `None` for lifetimes.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1)? {
        '\\' => {
            // Escape: find the closing quote within a small window
            // (`'\n'`, `'\u{7f}'`, ...).
            (i + 3..(i + 12).min(chars.len()))
                .find(|&j| chars[j] == '\'')
                .map(|j| j - i + 1)
        }
        _ => (chars.get(i + 2) == Some(&'\'')).then_some(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip_all(text: &str) -> Vec<String> {
        let mut s = Stripper::default();
        text.lines().map(|l| s.code_of(l)).collect()
    }

    #[test]
    fn stripper_removes_comments_and_string_contents() {
        let code = strip_all(
            r#"let a = 1; // std::sync::Mutex in a comment
let s = "std::sync::Mutex in a string";
/* block std::sync::Mutex
still comment */ let b = 2;
let c = '{'; let lt: &'static str = "x";"#,
        );
        assert!(!code[0].contains("Mutex"));
        assert!(code[0].contains("let a = 1;"));
        assert!(!code[1].contains("Mutex"));
        assert!(!code[2].contains("Mutex"));
        assert!(code[3].contains("let b = 2;"));
        assert!(!code[4].contains('{'), "char-literal brace stripped");
        assert!(code[4].contains("'static"), "lifetime preserved");
    }

    #[test]
    fn test_regions_cover_cfg_test_items() {
        let code = strip_all(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n",
        );
        let mask = test_regions(&code);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn test_regions_handle_braceless_items_and_stacked_attrs() {
        let code = strip_all(
            "#[cfg(test)]\n#[allow(dead_code)]\nmod testutil;\nfn prod() { a.unwrap() }\n",
        );
        let mask = test_regions(&code);
        assert_eq!(mask, vec![true, true, true, false]);
    }

    #[test]
    fn std_sync_rule_fires_through_use_and_path() {
        let f = lint_file("crates/x/src/lib.rs", "use std::sync::{Arc, Mutex};\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "std-sync");
        let f = lint_file(
            "crates/x/src/lib.rs",
            "let m = std::sync::RwLock::new(0);\n",
        );
        assert_eq!(f.len(), 1);
        // Arc/mpsc/atomics are fine.
        let f = lint_file(
            "crates/x/src/lib.rs",
            "use std::sync::{Arc, mpsc};\nuse std::sync::atomic::AtomicU64;\n",
        );
        assert!(f.is_empty());
    }

    #[test]
    fn unwrap_rule_scopes_to_daemon_paths_and_skips_tests() {
        let text = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let f = lint_file("crates/core/src/daemon/mod.rs", text);
        assert_eq!(f.len(), 1, "only the non-test unwrap: {f:?}");
        assert_eq!(f[0].line, 1);
        let f = lint_file("crates/core/src/api.rs", text);
        assert!(f.is_empty(), "outside the scoped paths: {f:?}");
        let f = lint_file("crates/core/src/cache/paging.rs", "v.expect(\"x\");\n");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn sleep_rule_exempts_the_backoff_helper() {
        let text = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint_file("crates/core/src/cluster/fleet.rs", text).len(), 1);
        assert!(lint_file("crates/core/src/backoff.rs", text).is_empty());
    }

    #[test]
    fn unsafe_rule_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        assert_eq!(lint_file("crates/x/src/lib.rs", bad).len(), 1);
        let good = "// SAFETY: g has no preconditions here.\nfn f() { unsafe { g() } }\n";
        assert!(lint_file("crates/x/src/lib.rs", good).is_empty());
        let impl_good = "// SAFETY: all fields are Send.\nunsafe impl Send for X {}\n";
        assert!(lint_file("crates/x/src/lib.rs", impl_good).is_empty());
    }

    #[test]
    fn unsafe_fn_accepts_a_safety_doc_section_beyond_the_window() {
        // `# Safety` more than 6 lines up, separated by a `# Panics`
        // section — the doc block is scanned in full for declarations.
        let decl = "\
/// Does a thing.
///
/// # Safety
///
/// Caller must pin the page.
///
/// # Panics
///
/// Panics when out of bounds.
#[must_use]
pub unsafe fn slice(&self) -> &[u8] { todo!() }
";
        assert!(lint_file("crates/x/src/lib.rs", decl).is_empty());
        // But an unsafe *block* still needs a nearby SAFETY comment.
        let block = "/// # Safety\n/// docs\nfn f() {\n\n\n\n\n\n\n    unsafe { g() }\n}\n";
        assert_eq!(lint_file("crates/x/src/lib.rs", block).len(), 1);
    }

    #[test]
    fn inline_allow_requires_a_reason() {
        let with_reason =
            "// lint:allow sleep -- measured: only reached in shutdown, bounded 1ms\nfn f() { std::thread::sleep(d); }\n";
        assert!(lint_file("crates/x/src/lib.rs", with_reason).is_empty());
        let without_reason = "// lint:allow sleep\nfn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint_file("crates/x/src/lib.rs", without_reason).len(), 1);
        let wrong_rule = "// lint:allow unwrap -- reasons\nfn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint_file("crates/x/src/lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn hot_mutex_rule_guards_the_paging_hot_path() {
        // Any mutex-family token in paging.rs fires, once per line.
        let text = "use parking_lot::Mutex;\nfn f(m: &Mutex<u32>) { let _g = m.lock(); }\n";
        let f = lint_file("crates/core/src/cache/paging.rs", text);
        assert_eq!(f.len(), 2, "both mutex lines flagged: {f:?}");
        assert!(f.iter().all(|x| x.rule.name() == "hot-mutex"));
        // The rule is scoped: the same code elsewhere is fine (the shim
        // Mutex is legal outside the hot path).
        assert!(lint_file("crates/core/src/cache/radix.rs", text).is_empty());
        // The fpage seqlock is the protocol, not a mutex.
        assert!(lint_file("crates/core/src/cache/paging.rs", "fp.lock();\n").is_empty());
        // RwLock fires too.
        let f = lint_file("crates/core/src/cache/paging.rs", "let l: RwLock<u8>;\n");
        assert_eq!(f.len(), 1);
        // A bare `parking_lot::` path fires even when the import renames
        // the lock away from the Mutex/RwLock tokens.
        let f = lint_file(
            "crates/core/src/cache/paging.rs",
            "use parking_lot::const_mutex as m;\n",
        );
        assert_eq!(f.len(), 1);
        // Waivers need a reason, as everywhere.
        let waived = "// lint:allow hot-mutex -- cold miss path only; measured zero contention\nuse parking_lot::Mutex;\n";
        assert!(lint_file("crates/core/src/cache/paging.rs", waived).is_empty());
        let reasonless = "// lint:allow hot-mutex\nuse parking_lot::Mutex;\n";
        assert_eq!(
            lint_file("crates/core/src/cache/paging.rs", reasonless).len(),
            1
        );
    }

    #[test]
    fn proxy_hostfs_rule_keeps_the_proxy_behind_the_wire() {
        // Any `HostFs` token in the scoped files fires, once per line.
        let text = "use hostfs::HostFs;\nfn f(fs: &HostFs) {}\n";
        for file in [
            "crates/core/src/remote/proxy.rs",
            "crates/core/src/remote/cache.rs",
            "crates/core/src/remote/client.rs",
        ] {
            let f = lint_file(file, text);
            assert_eq!(f.len(), 2, "{file}: both lines flagged: {f:?}");
            assert!(f.iter().all(|x| x.rule.name() == "proxy-hostfs"));
        }
        // The server and the rest of the tree own the file system.
        assert!(lint_file("crates/core/src/remote/server.rs", text).is_empty());
        assert!(lint_file("crates/core/src/daemon/mod.rs", text).is_empty());
        // Word boundaries: config/descriptor types carrying the prefix
        // are not the file system.
        assert!(lint_file(
            "crates/core/src/remote/proxy.rs",
            "use hostfs::{FsError, HostFsConfig};\nlet fd: HostFd = 0;\n",
        )
        .is_empty());
        // Test fixtures may build a server-side fs directly.
        assert!(lint_file(
            "crates/core/src/remote/proxy.rs",
            "#[cfg(test)]\nmod tests {\n    use hostfs::HostFs;\n}\n",
        )
        .is_empty());
        // Comments and docs don't trip the stripper-fed check.
        assert!(lint_file(
            "crates/core/src/remote/proxy.rs",
            "/// Mirrors `HostFs::reset_device_time`.\nfn f() {}\n",
        )
        .is_empty());
        // Waivers need a reason, as everywhere.
        let waived = "// lint:allow proxy-hostfs -- bootstrap only: handing the Arc to the server\nuse hostfs::HostFs;\n";
        assert!(lint_file("crates/core/src/remote/proxy.rs", waived).is_empty());
        let reasonless = "// lint:allow proxy-hostfs\nuse hostfs::HostFs;\n";
        assert_eq!(
            lint_file("crates/core/src/remote/proxy.rs", reasonless).len(),
            1
        );
    }

    #[test]
    fn adhoc_counter_rule_routes_counters_through_the_registry() {
        let text = "struct S { hits: AtomicU64 }\n";
        // Fires in general core code...
        let f = lint_file("crates/core/src/daemon/mod.rs", text);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule.name(), "adhoc-counter");
        // ...but not in the data-plane allowlist, outside crates/core,
        // or in test code.
        assert!(lint_file("crates/core/src/cache/radix.rs", text).is_empty());
        assert!(lint_file("crates/core/src/table.rs", text).is_empty());
        assert!(lint_file("crates/obs/src/trace.rs", text).is_empty());
        assert!(lint_file("crates/workloads/src/traffic.rs", text).is_empty());
        assert!(lint_file(
            "crates/core/src/daemon/mod.rs",
            "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::AtomicU64;\n}\n",
        )
        .is_empty());
        // Other atomic widths are not counters-by-convention.
        assert!(lint_file(
            "crates/core/src/daemon/mod.rs",
            "struct S { flag: AtomicBool, n: AtomicUsize }\n",
        )
        .is_empty());
        // Waivers need a reason, as everywhere.
        let waived = "// lint:allow adhoc-counter -- virtual-time frontier word, not a counter\nlet t = AtomicU64::new(0);\n";
        assert!(lint_file("crates/core/src/mount.rs", waived).is_empty());
        let reasonless = "// lint:allow adhoc-counter\nlet t = AtomicU64::new(0);\n";
        assert_eq!(lint_file("crates/core/src/mount.rs", reasonless).len(), 1);
    }

    #[test]
    fn unsafe_in_word_positions_only() {
        assert!(has_word("unsafe impl Send for X {}", "unsafe"));
        assert!(!has_word("let not_unsafe_name = 1;", "unsafe"));
        assert!(!has_word("unsafety", "unsafe"));
    }
}
